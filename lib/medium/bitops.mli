(** The four low-level bit operations of Section 3.

    - [mrb] — magnetic read: direction of a magnetised dot; a heated dot
      "would yield a more or less random result" (its perpendicular
      stray field is gone, the channel thresholds noise), so the result
      is a coin flip from the medium's PRNG.
    - [mwb] — magnetic write: sets the direction; silently ineffective
      on a heated dot (no perpendicular axis remains).
    - [ewb] — electrical write: heats the dot, destroying it
      irreversibly; may collaterally heat neighbours with the
      probability given by the thermal model.
    - [erb] — electrical read, {e built out of} magnetic reads and
      writes as the paper's 5-step atomic sequence: read, write inverse,
      verify inverse, write back, verify original.  Any failed
      verification means the dot no longer holds out-of-plane data.

    Every operation increments the per-medium counters, from which the
    device layer derives simulated time and energy; [erb] costs exactly
    5 primitive operations per cycle, which is where the paper's
    "at least 5 times slower than mrb" comes from. *)

type counters = {
  mutable mrb : int;
  mutable mwb : int;
  mutable ewb : int;
  mutable erb : int;  (** erb {e sequences}, not primitive ops. *)
  mutable collateral : int;  (** Neighbour dots destroyed by ewb pulses. *)
}

type ctx
(** A medium together with its counters and thermal write profile. *)

val make :
  ?profile:Physics.Thermal.profile ->
  ?read_ber:float ->
  Medium.t ->
  ctx
(** [profile] defaults to {!Physics.Thermal.default_profile} of the
    medium's geometry; [read_ber] is the raw magnetic-read error
    probability on healthy dots (default 0 — sector-level ECC is
    exercised separately with fault injection). *)

val medium : ctx -> Medium.t
val counters : ctx -> counters
val reset_counters : ctx -> unit
val profile : ctx -> Physics.Thermal.profile

val fault : ctx -> Fault.Injector.t option
val set_fault : ctx -> Fault.Injector.t option -> unit
(** Install (or remove) a fault injector.  With one installed, every
    primitive op ticks the injector first (so a configured power cut
    raises {!Fault.Injector.Power_cut} {e before} the op touches the
    medium); mrb results pass through the stuck-dot and bit-flip
    filters; ewb pulses may be underpowered and leave their dot
    magnetic.  [None] (the default) restores fault-free behaviour. *)

val mrb : ctx -> int -> Dot.direction
val mwb : ctx -> int -> Dot.direction -> unit
val ewb : ctx -> int -> unit

val erb : ?cycles:int -> ctx -> int -> bool
(** [erb ctx i] is [true] iff the dot is detected as heated.  [cycles]
    (default 1) repeats the invert/verify round: a heated dot passes one
    round by luck with probability 1/4 (both random reads agreeing), so
    callers that must not miss heated dots escalate the cycle count.
    A magnetised dot always comes back with its original data restored. *)

val primitive_ops : counters -> int
(** Total mrb + mwb operations issued, counting the ones inside erb —
    the denominator for op-cost accounting. *)
