type counters = {
  mutable mrb : int;
  mutable mwb : int;
  mutable ewb : int;
  mutable erb : int;
  mutable collateral : int;
}

type ctx = {
  medium : Medium.t;
  counters : counters;
  profile : Physics.Thermal.profile;
  read_ber : float;
  neighbour_damage_p : float;
  mutable fault : Fault.Injector.t option;
}

let make ?profile ?(read_ber = 0.) medium =
  let cfg = Medium.config medium in
  let profile =
    match profile with
    | Some p -> p
    | None -> Physics.Thermal.default_profile cfg.Medium.geometry
  in
  let neighbour_damage_p =
    Physics.Thermal.neighbour_damage_probability cfg.Medium.material profile
      ~pitch:cfg.Medium.geometry.pitch
  in
  {
    medium;
    counters = { mrb = 0; mwb = 0; ewb = 0; erb = 0; collateral = 0 };
    profile;
    read_ber;
    neighbour_damage_p;
    fault = None;
  }

(* Context for a cloned medium: fresh counters snapshotting the
   parent's, same physics.  A live injector is never inherited — fault
   plans hold position state (PRNG cursor, ledger) that belongs to the
   parent's history; the clone starts with [fault = None] and callers
   install a fresh injector if they want faults on the copy. *)
let clone t medium =
  let c = t.counters in
  {
    medium;
    counters =
      {
        mrb = c.mrb;
        mwb = c.mwb;
        ewb = c.ewb;
        erb = c.erb;
        collateral = c.collateral;
      };
    profile = t.profile;
    read_ber = t.read_ber;
    neighbour_damage_p = t.neighbour_damage_p;
    fault = None;
  }

let medium t = t.medium
let counters t = t.counters
let profile t = t.profile
let fault t = t.fault
let set_fault t inj = t.fault <- inj

(* Count one primitive op with the injector (may raise Power_cut at the
   boundary, before the op touches the medium). *)
let fault_tick t =
  match t.fault with None -> () | Some inj -> Fault.Injector.tick inj

let reset_counters t =
  t.counters.mrb <- 0;
  t.counters.mwb <- 0;
  t.counters.ewb <- 0;
  t.counters.erb <- 0;
  t.counters.collateral <- 0

let mrb t i =
  fault_tick t;
  t.counters.mrb <- t.counters.mrb + 1;
  let rng = Medium.rng t.medium in
  match Medium.get t.medium i with
  | Dot.Heated ->
      (* No perpendicular stray field left: the channel thresholds
         noise. *)
      if Sim.Prng.bool rng then Dot.Up else Dot.Down
  | Dot.Magnetised d ->
      let d = if Medium.is_defect t.medium i then Dot.invert d else d in
      let d =
        if t.read_ber > 0. && Sim.Prng.bernoulli rng t.read_ber then
          Dot.invert d
        else d
      in
      (match t.fault with
      | None -> d
      | Some inj ->
          if Fault.Injector.stuck inj ~dot:i then Dot.Down
          else if Fault.Injector.flip_read inj ~dot:i then Dot.invert d
          else d)

let mwb t i d =
  fault_tick t;
  t.counters.mwb <- t.counters.mwb + 1;
  match Medium.get t.medium i with
  | Dot.Heated -> () (* write has no perpendicular axis to act on *)
  | Dot.Magnetised _ -> Medium.set t.medium i (Dot.Magnetised d)

let ewb t i =
  fault_tick t;
  let weak =
    match t.fault with
    | None -> false
    | Some inj ->
        Fault.Injector.tick_ewb inj;
        Fault.Injector.weak_pulse inj ~dot:i
  in
  t.counters.ewb <- t.counters.ewb + 1;
  if not weak then begin
    (* An underpowered pulse never reaches the Curie point: the dot
       stays magnetic and no neighbour heat spills over. *)
    Medium.note_heated t.medium i;
    if t.neighbour_damage_p > 0. then
      Medium.iter_neighbours t.medium i (fun j ->
          if
            (not (Dot.is_heated (Medium.get t.medium j)))
            && Sim.Prng.bernoulli (Medium.rng t.medium) t.neighbour_damage_p
          then begin
            Medium.note_heated t.medium j;
            t.counters.collateral <- t.counters.collateral + 1
          end)
  end

(* One invert/verify round of the paper's erb sequence.  Returns [true]
   if the dot behaved as heated (a verification failed). *)
let erb_round t i =
  let original = mrb t i in
  let inverse = Dot.invert original in
  mwb t i inverse;
  let check1 = mrb t i in
  if not (Dot.equal_direction check1 inverse) then begin
    (* Restore best-effort and report heated. *)
    mwb t i original;
    true
  end
  else begin
    mwb t i original;
    let check2 = mrb t i in
    not (Dot.equal_direction check2 original)
  end

let erb ?(cycles = 1) t i =
  if cycles <= 0 then invalid_arg "Bitops.erb: cycles must be positive";
  t.counters.erb <- t.counters.erb + 1;
  let detected = ref false in
  (try
     for _ = 1 to cycles do
       if erb_round t i then begin
         detected := true;
         raise Exit
       end
     done
   with Exit -> ());
  !detected

let primitive_ops c = c.mrb + c.mwb

(* {1 Run kernels}

   Bulk variants of mrb/mwb/erb over a run of consecutive dots.  The
   fast path must be semantically invisible: it is taken only when no
   fault injector is installed (so there are no per-op ticks, stuck-dot
   filters or power-cut boundaries to honour), the read BER is zero and
   the run is provably defect-free.  Under those guards the only
   randomness the scalar path would draw is the heated-dot coin flips
   (mrb) and the heated-dot erb protocol reads, which the kernels
   reproduce in the exact same order from the same medium PRNG — so
   medium state, counters and the PRNG stream all stay bit-identical.
   Anything else falls back to a literal per-dot loop over the scalar
   ops. *)

let check_run t start len =
  if start < 0 || len < 0 || start + len > Medium.size t.medium then
    invalid_arg "Bitops: run out of range"

let fast_read_ok t ~start ~len =
  t.fault = None && t.read_ber = 0.
  && Medium.run_defect_free t.medium ~start ~len

let read_fast_available = fast_read_ok

let mrb_run t ~start ~len ~dst ~dst_pos =
  check_run t start len;
  if dst_pos < 0 || dst_pos + len > Array.length dst then
    invalid_arg "Bitops.mrb_run: destination out of range";
  if not (fast_read_ok t ~start ~len) then
    for k = 0 to len - 1 do
      Array.unsafe_set dst (dst_pos + k) (Dot.to_bool (mrb t (start + k)))
    done
  else begin
    t.counters.mrb <- t.counters.mrb + len;
    let rng = Medium.rng t.medium in
    (* Chunk boundaries are 4-dot-aligned, so the byte-at-a-time subpath
       triggers on exactly the same dots as it would over a flat store
       and the heated coin flips stay in address order. *)
    Medium.iter_chunks t.medium ~write:false ~start ~len
      (fun states ~base ~start:cstart ~len:clen ->
        let dpos = dst_pos + (cstart - start) in
        let k = ref 0 in
        while !k < clen do
          let i = cstart + !k in
          let byte =
            Char.code (Bigarray.Array1.unsafe_get states ((i lsr 2) - base))
          in
          (* A heated field has its high bit set: mask 0xAA over the byte. *)
          if i land 3 = 0 && !k + 4 <= clen && byte land 0xAA = 0 then begin
            let p = dpos + !k in
            Array.unsafe_set dst p (byte land 1 <> 0);
            Array.unsafe_set dst (p + 1) (byte land 4 <> 0);
            Array.unsafe_set dst (p + 2) (byte land 16 <> 0);
            Array.unsafe_set dst (p + 3) (byte land 64 <> 0);
            k := !k + 4
          end
          else begin
            let v = (byte lsr (2 * (i land 3))) land 3 in
            Array.unsafe_set dst (dpos + !k)
              (if v < 2 then v = 1 else Sim.Prng.bool rng);
            incr k
          end
        done)
  end

(* For a state byte with no heated field (byte land 0xAA = 0), the four
   dots' logical bits (Up = code 1 = pair bit 0) reversed into the top
   or bottom nibble of an MSB-first output byte. *)
let rev_up_nibble =
  lazy
    (Array.init 256 (fun b ->
         ((b land 1) lsl 3)
         lor (((b lsr 2) land 1) lsl 2)
         lor (((b lsr 4) land 1) lsl 1)
         lor ((b lsr 6) land 1)))

let mrb_run_packed t ~start ~len ~dst ~dst_pos =
  check_run t start len;
  if dst_pos < 0 || dst_pos + (len lsr 3) > Bytes.length dst then
    invalid_arg "Bitops.mrb_run_packed: destination out of range";
  if
    len = 0 || start land 7 <> 0 || len land 7 <> 0
    || not (fast_read_ok t ~start ~len)
  then len = 0
  else begin
    t.counters.mrb <- t.counters.mrb + len;
    let rng = Medium.rng t.medium in
    let tbl = Lazy.force rev_up_nibble in
    (* Segment boundaries are 8-dot-aligned, so every chunk keeps the
       byte-pair framing of the flat kernel. *)
    Medium.iter_chunks t.medium ~write:false ~start ~len
      (fun states ~base ~start:cstart ~len:clen ->
        let dpos = dst_pos + ((cstart - start) lsr 3) in
        let first = (cstart lsr 2) - base in
        for b = 0 to (clen lsr 3) - 1 do
          let s0 = Char.code (Bigarray.Array1.unsafe_get states (first + (2 * b)))
          and s1 =
            Char.code (Bigarray.Array1.unsafe_get states (first + (2 * b) + 1))
          in
          let v =
            if (s0 lor s1) land 0xAA = 0 then
              (Array.unsafe_get tbl s0 lsl 4) lor Array.unsafe_get tbl s1
            else begin
              (* A heated dot reads as a coin flip; the draws happen in
                 address order, exactly as the scalar path makes them. *)
              let acc = ref 0 in
              for j = 0 to 7 do
                let byte = if j < 4 then s0 else s1 in
                let c = (byte lsr (2 * (j land 3))) land 3 in
                let bit = if c < 2 then c = 1 else Sim.Prng.bool rng in
                if bit then acc := !acc lor (1 lsl (7 - j))
              done;
              !acc
            end
          in
          Bytes.unsafe_set dst (dpos + b) (Char.unsafe_chr v)
        done);
    true
  end

let mwb_run t ~start ~len ~src ~src_pos =
  check_run t start len;
  if src_pos < 0 || src_pos + len > Array.length src then
    invalid_arg "Bitops.mwb_run: source out of range";
  (* mwb ignores defects and draws no randomness, so the only guard is
     the injector's per-op ticks. *)
  if t.fault <> None then
    for k = 0 to len - 1 do
      mwb t (start + k) (Dot.of_bool (Array.unsafe_get src (src_pos + k)))
    done
  else begin
    t.counters.mwb <- t.counters.mwb + len;
    Medium.iter_chunks t.medium ~write:true ~start ~len
      (fun states ~base ~start:cstart ~len:clen ->
        let spos = src_pos + (cstart - start) in
        let k = ref 0 in
        while !k < clen do
          let i = cstart + !k in
          let idx = (i lsr 2) - base in
          let byte = Char.code (Bigarray.Array1.unsafe_get states idx) in
          if i land 3 = 0 && !k + 4 <= clen && byte land 0xAA = 0 then begin
            (* No heated dot in the byte: all four fields are overwritten. *)
            let p = spos + !k in
            let v =
              (if Array.unsafe_get src p then 1 else 0)
              lor (if Array.unsafe_get src (p + 1) then 4 else 0)
              lor (if Array.unsafe_get src (p + 2) then 16 else 0)
              lor if Array.unsafe_get src (p + 3) then 64 else 0
            in
            Bigarray.Array1.unsafe_set states idx (Char.unsafe_chr v);
            k := !k + 4
          end
          else begin
            let shift = 2 * (i land 3) in
            if (byte lsr shift) land 2 = 0 then begin
              let v = if Array.unsafe_get src (spos + !k) then 1 else 0 in
              Bigarray.Array1.unsafe_set states idx
                (Char.unsafe_chr (byte land lnot (3 lsl shift) lor (v lsl shift)))
            end;
            incr k
          end
        done)
  end

(* Inverse of [rev_up_nibble]: an MSB-first nibble of logical bits
   (bit 3 = lowest dot address) as a state byte of Up/Down codes. *)
let nibble_states =
  lazy
    (Array.init 16 (fun nib ->
         ((nib lsr 3) land 1)
         lor (((nib lsr 2) land 1) lsl 2)
         lor (((nib lsr 1) land 1) lsl 4)
         lor ((nib land 1) lsl 6)))

let mwb_run_packed t ~start ~len ~src ~src_pos =
  check_run t start len;
  if src_pos < 0 || src_pos + (len lsr 3) > Bytes.length src then
    invalid_arg "Bitops.mwb_run_packed: source out of range";
  (* Same decline-without-touching contract as [mrb_run_packed]; mwb
     ignores defects and draws no randomness, so the only kernel guard
     is the injector's per-op ticks. *)
  if len = 0 || start land 7 <> 0 || len land 7 <> 0 || t.fault <> None then
    len = 0
  else begin
    t.counters.mwb <- t.counters.mwb + len;
    let tbl = Lazy.force nibble_states in
    Medium.iter_chunks t.medium ~write:true ~start ~len
      (fun states ~base ~start:cstart ~len:clen ->
    let spos = src_pos + ((cstart - start) lsr 3) in
    let first = (cstart lsr 2) - base in
    for b = 0 to (clen lsr 3) - 1 do
      let v = Char.code (Bytes.unsafe_get src (spos + b)) in
      let i0 = first + (2 * b) in
      let s0 = Char.code (Bigarray.Array1.unsafe_get states i0)
      and s1 = Char.code (Bigarray.Array1.unsafe_get states (i0 + 1)) in
      if (s0 lor s1) land 0xAA = 0 then begin
        (* No heated dot in either state byte: overwrite all eight. *)
        Bigarray.Array1.unsafe_set states i0
          (Char.unsafe_chr (Array.unsafe_get tbl (v lsr 4)));
        Bigarray.Array1.unsafe_set states (i0 + 1)
          (Char.unsafe_chr (Array.unsafe_get tbl (v land 15)))
      end
      else
        (* A heated dot ignores the write (no perpendicular axis); the
           magnetised fields around it are still overwritten. *)
        for j = 0 to 7 do
          let idx = i0 + (j lsr 2) in
          let byte = Char.code (Bigarray.Array1.unsafe_get states idx) in
          let shift = 2 * (j land 3) in
          if (byte lsr shift) land 2 = 0 then begin
            let bit = (v lsr (7 - j)) land 1 in
            Bigarray.Array1.unsafe_set states idx
              (Char.unsafe_chr
                 (byte land lnot (3 lsl shift) lor (bit lsl shift)))
          end
        done
    done);
    true
  end

let erb_run ?(cycles = 1) t ~start ~len ~dst ~dst_pos =
  if cycles <= 0 then invalid_arg "Bitops.erb_run: cycles must be positive";
  check_run t start len;
  if dst_pos < 0 || dst_pos + len > Array.length dst then
    invalid_arg "Bitops.erb_run: destination out of range";
  if not (fast_read_ok t ~start ~len) then
    for k = 0 to len - 1 do
      Array.unsafe_set dst (dst_pos + k) (erb ~cycles t (start + k))
    done
  else begin
    t.counters.erb <- t.counters.erb + len;
    let rng = Medium.rng t.medium in
    let n_clean = ref 0 in
    (* Heated-dot charges accumulate in locals and land on the shared
       counters once, after the loop (they are int sums, so the totals
       are exactly the per-dot ones). *)
    let mrb_acc = ref 0 and mwb_acc = ref 0 in
    Medium.iter_chunks t.medium ~write:false ~start ~len
      (fun states ~base ~start:cstart ~len:clen ->
        let dpos = dst_pos + (cstart - start) in
        for k = 0 to clen - 1 do
          let i = cstart + k in
          let v =
            (Char.code (Bigarray.Array1.unsafe_get states ((i lsr 2) - base))
            lsr (2 * (i land 3)))
            land 3
          in
          if v < 2 then begin
            (* A healthy dot passes every round (the invert/restore writes
               cancel out), so only the op charges remain. *)
            incr n_clean;
            Array.unsafe_set dst (dpos + k) false
          end
          else begin
            (* The protocol on a heated dot: every mrb is a coin flip and
               every mwb is a no-op, so the rounds collapse to PRNG draws
               plus counter charges — in the scalar draw order (original,
               check1[, check2] per round, stopping at the round that
               detects; check1 = original means check1 differs from the
               written inverse, detection after 2 reads + 2 writes). *)
            let detected = ref false in
            let cyc = ref 0 in
            while (not !detected) && !cyc < cycles do
              incr cyc;
              let original = Sim.Prng.bool rng in
              let check1 = Sim.Prng.bool rng in
              if check1 = original then begin
                mrb_acc := !mrb_acc + 2;
                mwb_acc := !mwb_acc + 2;
                detected := true
              end
              else begin
                let check2 = Sim.Prng.bool rng in
                mrb_acc := !mrb_acc + 3;
                mwb_acc := !mwb_acc + 2;
                if check2 <> original then detected := true
              end
            done;
            Array.unsafe_set dst (dpos + k) !detected
          end
        done);
    t.counters.mrb <- t.counters.mrb + (3 * cycles * !n_clean) + !mrb_acc;
    t.counters.mwb <- t.counters.mwb + (2 * cycles * !n_clean) + !mwb_acc
  end
