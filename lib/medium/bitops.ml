type counters = {
  mutable mrb : int;
  mutable mwb : int;
  mutable ewb : int;
  mutable erb : int;
  mutable collateral : int;
}

type ctx = {
  medium : Medium.t;
  counters : counters;
  profile : Physics.Thermal.profile;
  read_ber : float;
  neighbour_damage_p : float;
  mutable fault : Fault.Injector.t option;
}

let make ?profile ?(read_ber = 0.) medium =
  let cfg = Medium.config medium in
  let profile =
    match profile with
    | Some p -> p
    | None -> Physics.Thermal.default_profile cfg.Medium.geometry
  in
  let neighbour_damage_p =
    Physics.Thermal.neighbour_damage_probability cfg.Medium.material profile
      ~pitch:cfg.Medium.geometry.pitch
  in
  {
    medium;
    counters = { mrb = 0; mwb = 0; ewb = 0; erb = 0; collateral = 0 };
    profile;
    read_ber;
    neighbour_damage_p;
    fault = None;
  }

let medium t = t.medium
let counters t = t.counters
let profile t = t.profile
let fault t = t.fault
let set_fault t inj = t.fault <- inj

(* Count one primitive op with the injector (may raise Power_cut at the
   boundary, before the op touches the medium). *)
let fault_tick t =
  match t.fault with None -> () | Some inj -> Fault.Injector.tick inj

let reset_counters t =
  t.counters.mrb <- 0;
  t.counters.mwb <- 0;
  t.counters.ewb <- 0;
  t.counters.erb <- 0;
  t.counters.collateral <- 0

let mrb t i =
  fault_tick t;
  t.counters.mrb <- t.counters.mrb + 1;
  let rng = Medium.rng t.medium in
  match Medium.get t.medium i with
  | Dot.Heated ->
      (* No perpendicular stray field left: the channel thresholds
         noise. *)
      if Sim.Prng.bool rng then Dot.Up else Dot.Down
  | Dot.Magnetised d ->
      let d = if Medium.is_defect t.medium i then Dot.invert d else d in
      let d =
        if t.read_ber > 0. && Sim.Prng.bernoulli rng t.read_ber then
          Dot.invert d
        else d
      in
      (match t.fault with
      | None -> d
      | Some inj ->
          if Fault.Injector.stuck inj ~dot:i then Dot.Down
          else if Fault.Injector.flip_read inj ~dot:i then Dot.invert d
          else d)

let mwb t i d =
  fault_tick t;
  t.counters.mwb <- t.counters.mwb + 1;
  match Medium.get t.medium i with
  | Dot.Heated -> () (* write has no perpendicular axis to act on *)
  | Dot.Magnetised _ -> Medium.set t.medium i (Dot.Magnetised d)

let ewb t i =
  fault_tick t;
  let weak =
    match t.fault with
    | None -> false
    | Some inj ->
        Fault.Injector.tick_ewb inj;
        Fault.Injector.weak_pulse inj ~dot:i
  in
  t.counters.ewb <- t.counters.ewb + 1;
  if not weak then begin
    (* An underpowered pulse never reaches the Curie point: the dot
       stays magnetic and no neighbour heat spills over. *)
    Medium.note_heated t.medium i;
    if t.neighbour_damage_p > 0. then
      List.iter
        (fun j ->
          if
            (not (Dot.is_heated (Medium.get t.medium j)))
            && Sim.Prng.bernoulli (Medium.rng t.medium) t.neighbour_damage_p
          then begin
            Medium.note_heated t.medium j;
            t.counters.collateral <- t.counters.collateral + 1
          end)
        (Medium.neighbours t.medium i)
  end

(* One invert/verify round of the paper's erb sequence.  Returns [true]
   if the dot behaved as heated (a verification failed). *)
let erb_round t i =
  let original = mrb t i in
  let inverse = Dot.invert original in
  mwb t i inverse;
  let check1 = mrb t i in
  if not (Dot.equal_direction check1 inverse) then begin
    (* Restore best-effort and report heated. *)
    mwb t i original;
    true
  end
  else begin
    mwb t i original;
    let check2 = mrb t i in
    not (Dot.equal_direction check2 original)
  end

let erb ?(cycles = 1) t i =
  if cycles <= 0 then invalid_arg "Bitops.erb: cycles must be positive";
  t.counters.erb <- t.counters.erb + 1;
  let detected = ref false in
  (try
     for _ = 1 to cycles do
       if erb_round t i then begin
         detected := true;
         raise Exit
       end
     done
   with Exit -> ());
  !detected

let primitive_ops c = c.mrb + c.mwb
