(** The patterned medium: a rows × cols matrix of magnetic dots
    (Section 6, Figure 5), each in one of the three {!Dot} states, plus
    a manufacturing defect map.

    States are packed two bits per dot so that media of 10^7–10^8 dots
    (the scale our experiments simulate; a real device would hold
    ~10^12) stay cheap.  All randomness (heated-dot reads, defect
    placement, collateral-damage draws) is drawn from the medium's own
    {!Sim.Prng.t}, so a seed reproduces a run exactly. *)

type t

type config = {
  rows : int;
  cols : int;
  geometry : Physics.Constants.dot_geometry;
  material : Physics.Constants.material;
  defect_rate : float;
      (** Fraction of dots that are manufacturing defects (cannot hold a
          stable perpendicular bit); placed uniformly at seed time. *)
  seed : int;
}

val default_config : rows:int -> cols:int -> config
(** 100 nm-pitch Co/Pt medium, defect rate 0, seed 42. *)

val create : config -> t
(** All dots start magnetised [Down] (a bulk-erased virgin medium).
    Allocation is lazy: the packed store is segmented and a segment is
    only materialised when first written, so a blank device costs two
    pointer arrays rather than a full matrix. *)

val clone : t -> t
(** Copy-on-write snapshot.  Parent and clone share every unmutated
    segment read-only and each pays a private per-segment copy only as
    it diverges, so cloning a formatted golden device is O(segments)
    pointer work with no payload copies.  The clone gets an independent
    copy of the parent's PRNG state; the defect map and config (both
    immutable after {!create}) are shared. *)

val config : t -> config
val size : t -> int
(** Total number of dots, [rows * cols]. *)

val rows : t -> int
val cols : t -> int
val rng : t -> Sim.Prng.t

val get : t -> int -> Dot.t
(** Physical state of dot [i] (row-major index) — what an oracle (or a
    forensic lab with magnetic imaging, Section 8) sees, {e not} what a
    magnetic read returns.  @raise Invalid_argument out of range. *)

val set : t -> int -> Dot.t -> unit
(** Raw state override — reserved for the attacker model and tests; the
    device goes through {!Bitops}. *)

val is_defect : t -> int -> bool

val defect_count : t -> int
(** Total manufacturing defects placed at seed time. *)

val run_defect_free : t -> start:int -> len:int -> bool
(** Whether the run [start, start+len) is guaranteed free of defects.
    Checked at {e row} granularity against a bitmap precomputed at
    {!create}, so it is O(rows touched), not O(len); a [false] answer
    may therefore be conservative (defect elsewhere in a touched row),
    which only costs callers their fast path, never correctness.
    @raise Invalid_argument if the run is out of range. *)

val neighbours : t -> int -> int list
(** The 4-neighbourhood (same row ±1, same column ±1 row) — the dots at
    thermal risk when dot [i] is pulse-heated. *)

val iter_neighbours : t -> int -> (int -> unit) -> unit
(** Allocation-free {!neighbours}, visiting in the same order (left,
    right, up, down) so per-neighbour randomness draws stay
    bit-identical with the list version. *)

(** {1 Run access}

    Allocation-free bulk views for the device hot path.  State codes are
    the raw 2-bit encoding: 0 = Down, 1 = Up, 2 = Heated. *)

type states =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
(** Packed state segments live off-heap in [Bigarray]s so multi-GB
    media never sit on (or get copied by) the OCaml heap.  Bytes hold 4
    dots each: dot [i] occupies bits [2*(i mod 4)..2*(i mod 4)+1] of
    packed byte [i/4]. *)

val iter_chunks :
  t ->
  write:bool ->
  start:int ->
  len:int ->
  (states -> base:int -> start:int -> len:int -> unit) ->
  unit
(** Walk the dot run [start, start+len) one segment-contained chunk at a
    time: the callback gets a segment payload, the packed-byte index
    [base] of its first byte, and the chunk's dot sub-run — dot [i]
    lives in segment byte [(i / 4) - base].  With [~write:false] the
    payload may be a shared (or the global zero) segment and must not be
    written; [~write:true] materialises a private copy first.  Segment
    boundaries are 8-dot-aligned, so chunking never splits a packed byte
    or a packed-kernel byte pair.  This is the bulk-kernel access path
    ({!Bitops} run kernels); it bypasses the heated-count bookkeeping.
    @raise Invalid_argument if the run is out of range. *)

val packed_length : t -> int
(** Bytes in the packed state store, [(size + 3) / 4]. *)

val segment_bytes : int
(** Packed bytes per CoW segment (a constant; [4 * segment_bytes]
    dots). *)

val owned_segments : t -> int
(** Segments currently materialised privately in this device. *)

val total_segments : t -> int
(** Total segments in the store, [ceil (packed_length / segment_bytes)]. *)

val materialized_total : t -> int
(** Monotonic count of private segment materialisations since this
    device was created or cloned — the deterministic CoW-cost counter
    the fleet bench gates on. *)

val blit_packed : t -> pos:int -> dst:Bytes.t -> dst_off:int -> len:int -> unit
(** Copy [len] packed state bytes starting at packed byte [pos] into
    [dst] — the streaming-image export primitive (chunks of the store,
    no whole-device buffer). *)

val load_packed : t -> pos:int -> src:Bytes.t -> src_off:int -> len:int -> unit
(** Overwrite [len] packed state bytes from [src], collapsing any
    reserved 2-bit code 3 to Heated (the same decoding {!get} applies),
    so foreign bytes cannot plant an unrepresentable state.  Does {e
    not} maintain the heated count — stream the whole image in, then
    call {!recount_heated} once. *)

val recount_heated : t -> unit
(** Recompute the cached heated-dot total from the state store (after a
    bulk {!load_packed}). *)

val get_run : t -> start:int -> len:int -> dst:Bytes.t -> dst_pos:int -> unit
(** Copy the state codes of dots [start, start+len) into [dst] at
    [dst_pos], one code per byte. *)

val set_run : t -> start:int -> len:int -> src:Bytes.t -> src_pos:int -> unit
(** Raw bulk override (the run analogue of {!set}): writes the state
    codes read from [src] and maintains the heated count.
    @raise Invalid_argument on a code > 2 or an out-of-range run. *)

val count_heated_run : t -> start:int -> len:int -> int
(** Heated dots in [start, start+len), counted a packed state byte at a
    time. *)

val heated_count : t -> int
val heated_fraction : t -> float

val capacity_bits : t -> float
(** Bits the medium would hold at its areal density — reported, not a
    limit on [size]. *)

val iter_heated : t -> (int -> unit) -> unit
(** Visit every heated dot (used by the full-medium forensic scan). *)

val note_heated : t -> int -> unit
(** Bookkeeping hook for {!Bitops}: records that dot [i] became heated
    (idempotent). *)
