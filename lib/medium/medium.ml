type config = {
  rows : int;
  cols : int;
  geometry : Physics.Constants.dot_geometry;
  material : Physics.Constants.material;
  defect_rate : float;
  seed : int;
}

type states =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  config : config;
  states : states; (* 2 bits per dot: 0 = Down, 1 = Up, 2 = Heated *)
  defects : Bytes.t; (* 1 bit per dot; empty when defect_rate = 0 *)
  rows_clean : Bytes.t; (* 1 bit per row: set = no defect in the row *)
  defect_total : int;
  rng : Sim.Prng.t;
  mutable heated : int;
}

let default_config ~rows ~cols =
  {
    rows;
    cols;
    geometry = Physics.Constants.dot_100nm;
    material = Physics.Constants.co_pt;
    defect_rate = 0.;
    seed = 42;
  }

let size t = t.config.rows * t.config.cols
let rows t = t.config.rows
let cols t = t.config.cols
let config t = t.config
let rng t = t.rng

let create config =
  if config.rows <= 0 || config.cols <= 0 then
    invalid_arg "Medium.create: non-positive dimensions";
  let n = config.rows * config.cols in
  let rng = Sim.Prng.create config.seed in
  (* The states live off-heap: a multi-GB simulated device must not sit
     on the OCaml heap where the GC would walk (and copy) it. *)
  let states =
    Bigarray.Array1.create Bigarray.char Bigarray.c_layout ((n + 3) / 4)
  in
  Bigarray.Array1.fill states '\x00';
  (* A defect-free medium (the common large-geometry case) keeps no
     per-dot defect bitmap at all. *)
  let defects =
    if config.defect_rate > 0. then Bytes.make ((n + 7) / 8) '\x00'
    else Bytes.empty
  in
  let rows_clean = Bytes.make ((config.rows + 7) / 8) '\xFF' in
  let defect_total = ref 0 in
  if config.defect_rate > 0. then
    for i = 0 to n - 1 do
      if Sim.Prng.bernoulli rng config.defect_rate then begin
        let byte = i / 8 and bit = i mod 8 in
        Bytes.set defects byte
          (Char.chr (Char.code (Bytes.get defects byte) lor (1 lsl bit)));
        incr defect_total;
        let row = i / config.cols in
        Bytes.set rows_clean (row / 8)
          (Char.chr
             (Char.code (Bytes.get rows_clean (row / 8))
             land lnot (1 lsl (row mod 8))))
      end
    done;
  {
    config;
    states;
    defects;
    rows_clean;
    defect_total = !defect_total;
    rng;
    heated = 0;
  }

let check_range t i =
  if i < 0 || i >= size t then invalid_arg "Medium: dot index out of range"

let raw_get t i =
  let byte = i / 4 and shift = 2 * (i mod 4) in
  (Char.code (Bigarray.Array1.get t.states byte) lsr shift) land 3

let raw_set t i v =
  let byte = i / 4 and shift = 2 * (i mod 4) in
  let old = Char.code (Bigarray.Array1.get t.states byte) in
  Bigarray.Array1.set t.states byte
    (Char.chr (old land lnot (3 lsl shift) lor (v lsl shift)))

let get t i =
  check_range t i;
  match raw_get t i with
  | 0 -> Dot.Magnetised Dot.Down
  | 1 -> Dot.Magnetised Dot.Up
  | _ -> Dot.Heated

let set t i s =
  check_range t i;
  let was_heated = raw_get t i = 2 in
  let v =
    match s with
    | Dot.Magnetised Dot.Down -> 0
    | Dot.Magnetised Dot.Up -> 1
    | Dot.Heated -> 2
  in
  (match (was_heated, s) with
  | false, Dot.Heated -> t.heated <- t.heated + 1
  | true, Dot.Magnetised _ -> t.heated <- t.heated - 1
  | _ -> ());
  raw_set t i v

let is_defect t i =
  check_range t i;
  t.defect_total > 0
  && Char.code (Bytes.get t.defects (i / 8)) land (1 lsl (i mod 8)) <> 0

let defect_count t = t.defect_total

let check_run t start len =
  if len < 0 || start < 0 || start + len > size t then
    invalid_arg "Medium: run out of range"

let run_defect_free t ~start ~len =
  check_run t start len;
  t.defect_total = 0
  || len = 0
  ||
  let c = t.config.cols in
  let r0 = start / c and r1 = (start + len - 1) / c in
  let ok = ref true in
  for r = r0 to r1 do
    if Char.code (Bytes.unsafe_get t.rows_clean (r lsr 3)) land (1 lsl (r land 7)) = 0
    then ok := false
  done;
  !ok

let states t = t.states
let packed_length t = Bigarray.Array1.dim t.states

let blit_packed t ~pos ~dst ~dst_off ~len =
  if
    pos < 0 || len < 0
    || pos + len > Bigarray.Array1.dim t.states
    || dst_off < 0
    || dst_off + len > Bytes.length dst
  then invalid_arg "Medium.blit_packed: out of range";
  for k = 0 to len - 1 do
    Bytes.unsafe_set dst (dst_off + k)
      (Bigarray.Array1.unsafe_get t.states (pos + k))
  done

(* Every 2-bit field >= 2 collapses to the canonical Heated code 2 (the
   decoding [raw_get] applies), so a foreign byte can never plant the
   reserved code 3 in the store. *)
let sanitize_byte =
  lazy
    (Array.init 256 (fun b ->
         let v = ref 0 in
         for f = 0 to 3 do
           let c = (b lsr (2 * f)) land 3 in
           v := !v lor ((if c > 2 then 2 else c) lsl (2 * f))
         done;
         Char.chr !v))

let load_packed t ~pos ~src ~src_off ~len =
  if
    pos < 0 || len < 0
    || pos + len > Bigarray.Array1.dim t.states
    || src_off < 0
    || src_off + len > Bytes.length src
  then invalid_arg "Medium.load_packed: out of range";
  let tbl = Lazy.force sanitize_byte in
  for k = 0 to len - 1 do
    Bigarray.Array1.unsafe_set t.states (pos + k)
      (Array.unsafe_get tbl (Char.code (Bytes.unsafe_get src (src_off + k))))
  done

(* Number of 2-bit fields per state byte that read back as Heated
   (raw code >= 2, matching [raw_get]'s decoding). *)
let heated_per_byte =
  lazy
    (Array.init 256 (fun b ->
         let n = ref 0 in
         for f = 0 to 3 do
           if (b lsr (2 * f)) land 3 >= 2 then incr n
         done;
         !n))

let count_heated_run t ~start ~len =
  check_run t start len;
  let tbl = Lazy.force heated_per_byte in
  let n = ref 0 in
  let i = ref start in
  let stop = start + len in
  (* Unaligned head *)
  while !i < stop && !i land 3 <> 0 do
    if raw_get t !i >= 2 then incr n;
    incr i
  done;
  (* Whole state bytes *)
  while !i + 4 <= stop do
    n :=
      !n
      + Array.unsafe_get tbl
          (Char.code (Bigarray.Array1.unsafe_get t.states (!i lsr 2)));
    i := !i + 4
  done;
  (* Tail *)
  while !i < stop do
    if raw_get t !i >= 2 then incr n;
    incr i
  done;
  !n

let recount_heated t = t.heated <- count_heated_run t ~start:0 ~len:(size t)

let get_run t ~start ~len ~dst ~dst_pos =
  check_run t start len;
  if dst_pos < 0 || dst_pos + len > Bytes.length dst then
    invalid_arg "Medium.get_run: destination out of range";
  for k = 0 to len - 1 do
    Bytes.unsafe_set dst (dst_pos + k) (Char.unsafe_chr (raw_get t (start + k)))
  done

let set_run t ~start ~len ~src ~src_pos =
  check_run t start len;
  if src_pos < 0 || src_pos + len > Bytes.length src then
    invalid_arg "Medium.set_run: source out of range";
  for k = 0 to len - 1 do
    let v = Char.code (Bytes.get src (src_pos + k)) in
    if v > 2 then invalid_arg "Medium.set_run: invalid state code";
    let i = start + k in
    let old = raw_get t i in
    if old >= 2 && v < 2 then t.heated <- t.heated - 1
    else if old < 2 && v = 2 then t.heated <- t.heated + 1;
    raw_set t i v
  done

let neighbours t i =
  check_range t i;
  let c = t.config.cols in
  let row = i / c and col = i mod c in
  let candidates =
    [ (row, col - 1); (row, col + 1); (row - 1, col); (row + 1, col) ]
  in
  List.filter_map
    (fun (r, cl) ->
      if r < 0 || r >= t.config.rows || cl < 0 || cl >= c then None
      else Some ((r * c) + cl))
    candidates

(* Same visit order as [neighbours] — left, right, up, down — so
   callers drawing randomness per neighbour keep a bit-identical
   stream whichever entry point they use. *)
let iter_neighbours t i f =
  check_range t i;
  let c = t.config.cols in
  let row = i / c and col = i mod c in
  if col > 0 then f (i - 1);
  if col < c - 1 then f (i + 1);
  if row > 0 then f (i - c);
  if row < t.config.rows - 1 then f (i + c)

let heated_count t = t.heated
let heated_fraction t = float_of_int t.heated /. float_of_int (size t)

let capacity_bits t =
  let area_cm2 =
    float_of_int (size t) *. t.config.geometry.pitch *. t.config.geometry.pitch
    /. 1e-4
  in
  area_cm2 *. Physics.Constants.areal_density_bits_per_cm2 t.config.geometry

let iter_heated t f =
  for i = 0 to size t - 1 do
    if raw_get t i = 2 then f i
  done

let note_heated t i =
  check_range t i;
  if raw_get t i <> 2 then begin
    t.heated <- t.heated + 1;
    raw_set t i 2
  end
