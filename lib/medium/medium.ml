type config = {
  rows : int;
  cols : int;
  geometry : Physics.Constants.dot_geometry;
  material : Physics.Constants.material;
  defect_rate : float;
  seed : int;
}

type states =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

(* The packed store is segmented for lazy allocation and copy-on-write:
   a segment is [None] while still all-zero (virgin medium) or while
   shared read-only with clone relatives ([frozen]), and is only ever
   materialised — privately, in [own] — when written.  So a blank or
   freshly-cloned device costs two pointer arrays, not a full matrix.

   Segment payloads are off-heap [Bigarray]s: the GC sees only the
   pointer arrays, and the process-wide CoW footprint is pinned by
   RSS/address-space limits (the CI fleet job runs under [ulimit -v]). *)

let seg_bytes = 4096
let seg_shift = 12
let seg_mask = seg_bytes - 1
let seg_dots = seg_bytes * 4

type t = {
  config : config;
  n_packed : int; (* packed bytes of live store, (size + 3) / 4 *)
  mutable frozen : states option array;
      (* per segment: shared read-only payload, or None = all-zero *)
  mutable own : states option array;
      (* per segment: this device's private overlay *)
  mutable own_count : int;
  mutable materialized_total : int; (* own segments ever created *)
  defects : Bytes.t; (* 1 bit per dot; empty when defect_rate = 0 *)
  rows_clean : Bytes.t; (* 1 bit per row: set = no defect in the row *)
  defect_total : int;
  rng : Sim.Prng.t;
  mutable heated : int;
}

let default_config ~rows ~cols =
  {
    rows;
    cols;
    geometry = Physics.Constants.dot_100nm;
    material = Physics.Constants.co_pt;
    defect_rate = 0.;
    seed = 42;
  }

let size t = t.config.rows * t.config.cols
let rows t = t.config.rows
let cols t = t.config.cols
let config t = t.config
let rng t = t.rng
let segment_bytes = seg_bytes

(* One process-wide all-zero segment backs every unmaterialised read. *)
let zero_seg : states Lazy.t =
  lazy
    (let s =
       Bigarray.Array1.create Bigarray.char Bigarray.c_layout seg_bytes
     in
     Bigarray.Array1.fill s '\x00';
     s)

let n_segs_of n_packed = (n_packed + seg_bytes - 1) / seg_bytes

let create config =
  if config.rows <= 0 || config.cols <= 0 then
    invalid_arg "Medium.create: non-positive dimensions";
  let n = config.rows * config.cols in
  let rng = Sim.Prng.create config.seed in
  let n_packed = (n + 3) / 4 in
  let n_segs = n_segs_of n_packed in
  (* A defect-free medium (the common large-geometry case) keeps no
     per-dot defect bitmap at all. *)
  let defects =
    if config.defect_rate > 0. then Bytes.make ((n + 7) / 8) '\x00'
    else Bytes.empty
  in
  let rows_clean = Bytes.make ((config.rows + 7) / 8) '\xFF' in
  let defect_total = ref 0 in
  if config.defect_rate > 0. then
    for i = 0 to n - 1 do
      if Sim.Prng.bernoulli rng config.defect_rate then begin
        let byte = i / 8 and bit = i mod 8 in
        Bytes.set defects byte
          (Char.chr (Char.code (Bytes.get defects byte) lor (1 lsl bit)));
        incr defect_total;
        let row = i / config.cols in
        Bytes.set rows_clean (row / 8)
          (Char.chr
             (Char.code (Bytes.get rows_clean (row / 8))
             land lnot (1 lsl (row mod 8))))
      end
    done;
  {
    config;
    n_packed;
    frozen = Array.make n_segs None;
    own = Array.make n_segs None;
    own_count = 0;
    materialized_total = 0;
    defects;
    rows_clean;
    defect_total = !defect_total;
    rng;
    heated = 0;
  }

(* Read view of segment [si]: private overlay, else shared frozen
   payload, else the global zero segment. *)
let seg_ro t si =
  match Array.unsafe_get t.own si with
  | Some s -> s
  | None -> (
      match Array.unsafe_get t.frozen si with
      | Some s -> s
      | None -> Lazy.force zero_seg)

(* Write view: materialise a private copy on first touch. *)
let seg_rw t si =
  match Array.unsafe_get t.own si with
  | Some s -> s
  | None ->
      let s =
        Bigarray.Array1.create Bigarray.char Bigarray.c_layout seg_bytes
      in
      (match Array.unsafe_get t.frozen si with
      | Some f -> Bigarray.Array1.blit f s
      | None -> Bigarray.Array1.fill s '\x00');
      Array.unsafe_set t.own si (Some s);
      t.own_count <- t.own_count + 1;
      t.materialized_total <- t.materialized_total + 1;
      s

let owned_segments t = t.own_count
let total_segments t = Array.length t.frozen
let materialized_total t = t.materialized_total

(* CoW snapshot.  The parent's private overlay merges into a fresh
   frozen generation shared (read-only, by construction: nothing ever
   writes a [frozen] payload) with the child; both sides restart with
   empty overlays, so the clone itself copies only pointer arrays and
   each side pays per-segment copies lazily as it diverges. *)
let clone t =
  let n_segs = Array.length t.frozen in
  let frozen' =
    Array.init n_segs (fun si ->
        match t.own.(si) with Some s -> Some s | None -> t.frozen.(si))
  in
  t.frozen <- frozen';
  t.own <- Array.make n_segs None;
  t.own_count <- 0;
  {
    config = t.config;
    n_packed = t.n_packed;
    frozen = Array.copy frozen';
    own = Array.make n_segs None;
    own_count = 0;
    materialized_total = 0;
    defects = t.defects (* immutable after create: shared *);
    rows_clean = t.rows_clean;
    defect_total = t.defect_total;
    rng = Sim.Prng.copy t.rng;
    heated = t.heated;
  }

let check_range t i =
  if i < 0 || i >= size t then invalid_arg "Medium: dot index out of range"

let raw_get t i =
  let byte = i lsr 2 and shift = 2 * (i land 3) in
  let seg = seg_ro t (byte lsr seg_shift) in
  (Char.code (Bigarray.Array1.unsafe_get seg (byte land seg_mask)) lsr shift)
  land 3

let raw_set t i v =
  let byte = i lsr 2 and shift = 2 * (i land 3) in
  let seg = seg_rw t (byte lsr seg_shift) in
  let j = byte land seg_mask in
  let old = Char.code (Bigarray.Array1.unsafe_get seg j) in
  Bigarray.Array1.unsafe_set seg j
    (Char.chr (old land lnot (3 lsl shift) lor (v lsl shift)))

let get t i =
  check_range t i;
  match raw_get t i with
  | 0 -> Dot.Magnetised Dot.Down
  | 1 -> Dot.Magnetised Dot.Up
  | _ -> Dot.Heated

let set t i s =
  check_range t i;
  let was_heated = raw_get t i = 2 in
  let v =
    match s with
    | Dot.Magnetised Dot.Down -> 0
    | Dot.Magnetised Dot.Up -> 1
    | Dot.Heated -> 2
  in
  (match (was_heated, s) with
  | false, Dot.Heated -> t.heated <- t.heated + 1
  | true, Dot.Magnetised _ -> t.heated <- t.heated - 1
  | _ -> ());
  raw_set t i v

let is_defect t i =
  check_range t i;
  t.defect_total > 0
  && Char.code (Bytes.get t.defects (i / 8)) land (1 lsl (i mod 8)) <> 0

let defect_count t = t.defect_total

let check_run t start len =
  if len < 0 || start < 0 || start + len > size t then
    invalid_arg "Medium: run out of range"

let run_defect_free t ~start ~len =
  check_run t start len;
  t.defect_total = 0
  || len = 0
  ||
  let c = t.config.cols in
  let r0 = start / c and r1 = (start + len - 1) / c in
  let ok = ref true in
  for r = r0 to r1 do
    if Char.code (Bytes.unsafe_get t.rows_clean (r lsr 3)) land (1 lsl (r land 7)) = 0
    then ok := false
  done;
  !ok

let packed_length t = t.n_packed

(* Walk the dot run [start, start+len) one segment-contained chunk at a
   time.  Segment boundaries fall on multiples of [seg_dots] (a multiple
   of 8), so chunking never splits a packed byte — or the byte-pairs the
   packed kernels consume — and the bulk kernels built on this produce
   bit-identical results to a flat store. *)
let iter_chunks t ~write ~start ~len f =
  check_run t start len;
  let stop = start + len in
  let i = ref start in
  while !i < stop do
    let si = !i / seg_dots in
    let cstop = min stop ((si + 1) * seg_dots) in
    let seg = if write then seg_rw t si else seg_ro t si in
    f seg ~base:(si lsl seg_shift) ~start:!i ~len:(cstop - !i);
    i := cstop
  done

let blit_packed t ~pos ~dst ~dst_off ~len =
  if
    pos < 0 || len < 0
    || pos + len > t.n_packed
    || dst_off < 0
    || dst_off + len > Bytes.length dst
  then invalid_arg "Medium.blit_packed: out of range";
  let k = ref 0 in
  while !k < len do
    let p = pos + !k in
    let si = p lsr seg_shift in
    let j = p land seg_mask in
    let chunk = min (len - !k) (seg_bytes - j) in
    let seg = seg_ro t si in
    let off = dst_off + !k in
    for q = 0 to chunk - 1 do
      Bytes.unsafe_set dst (off + q) (Bigarray.Array1.unsafe_get seg (j + q))
    done;
    k := !k + chunk
  done

(* Every 2-bit field >= 2 collapses to the canonical Heated code 2 (the
   decoding [raw_get] applies), so a foreign byte can never plant the
   reserved code 3 in the store. *)
let sanitize_byte =
  lazy
    (Array.init 256 (fun b ->
         let v = ref 0 in
         for f = 0 to 3 do
           let c = (b lsr (2 * f)) land 3 in
           v := !v lor ((if c > 2 then 2 else c) lsl (2 * f))
         done;
         Char.chr !v))

let load_packed t ~pos ~src ~src_off ~len =
  if
    pos < 0 || len < 0
    || pos + len > t.n_packed
    || src_off < 0
    || src_off + len > Bytes.length src
  then invalid_arg "Medium.load_packed: out of range";
  let tbl = Lazy.force sanitize_byte in
  let k = ref 0 in
  while !k < len do
    let p = pos + !k in
    let si = p lsr seg_shift in
    let j = p land seg_mask in
    let chunk = min (len - !k) (seg_bytes - j) in
    let off = src_off + !k in
    (* Loading all-zero bytes into a still-virtual all-zero segment is a
       no-op: skip materialising it, so streaming a sparse image into a
       blank device keeps the device sparse.  (A byte sanitises to zero
       iff it is zero, so checking the raw source suffices.) *)
    let virtual_zero = t.own.(si) = None && t.frozen.(si) = None in
    let all_zero =
      virtual_zero
      &&
      let z = ref true in
      let q = ref 0 in
      while !z && !q < chunk do
        if Bytes.unsafe_get src (off + !q) <> '\x00' then z := false;
        incr q
      done;
      !z
    in
    if not all_zero then begin
      let seg = seg_rw t si in
      for q = 0 to chunk - 1 do
        Bigarray.Array1.unsafe_set seg (j + q)
          (Array.unsafe_get tbl (Char.code (Bytes.unsafe_get src (off + q))))
      done
    end;
    k := !k + chunk
  done

(* Number of 2-bit fields per state byte that read back as Heated
   (raw code >= 2, matching [raw_get]'s decoding). *)
let heated_per_byte =
  lazy
    (Array.init 256 (fun b ->
         let n = ref 0 in
         for f = 0 to 3 do
           if (b lsr (2 * f)) land 3 >= 2 then incr n
         done;
         !n))

let count_heated_run t ~start ~len =
  check_run t start len;
  let tbl = Lazy.force heated_per_byte in
  let n = ref 0 in
  iter_chunks t ~write:false ~start ~len (fun seg ~base ~start ~len ->
      let state i =
        (Char.code (Bigarray.Array1.unsafe_get seg ((i lsr 2) - base))
        lsr (2 * (i land 3)))
        land 3
      in
      let i = ref start in
      let stop = start + len in
      (* Unaligned head *)
      while !i < stop && !i land 3 <> 0 do
        if state !i >= 2 then incr n;
        incr i
      done;
      (* Whole state bytes *)
      while !i + 4 <= stop do
        n :=
          !n
          + Array.unsafe_get tbl
              (Char.code (Bigarray.Array1.unsafe_get seg ((!i lsr 2) - base)));
        i := !i + 4
      done;
      (* Tail *)
      while !i < stop do
        if state !i >= 2 then incr n;
        incr i
      done);
  !n

let recount_heated t = t.heated <- count_heated_run t ~start:0 ~len:(size t)

let get_run t ~start ~len ~dst ~dst_pos =
  check_run t start len;
  if dst_pos < 0 || dst_pos + len > Bytes.length dst then
    invalid_arg "Medium.get_run: destination out of range";
  for k = 0 to len - 1 do
    Bytes.unsafe_set dst (dst_pos + k) (Char.unsafe_chr (raw_get t (start + k)))
  done

let set_run t ~start ~len ~src ~src_pos =
  check_run t start len;
  if src_pos < 0 || src_pos + len > Bytes.length src then
    invalid_arg "Medium.set_run: source out of range";
  for k = 0 to len - 1 do
    let v = Char.code (Bytes.get src (src_pos + k)) in
    if v > 2 then invalid_arg "Medium.set_run: invalid state code";
    let i = start + k in
    let old = raw_get t i in
    if old >= 2 && v < 2 then t.heated <- t.heated - 1
    else if old < 2 && v = 2 then t.heated <- t.heated + 1;
    raw_set t i v
  done

let neighbours t i =
  check_range t i;
  let c = t.config.cols in
  let row = i / c and col = i mod c in
  let candidates =
    [ (row, col - 1); (row, col + 1); (row - 1, col); (row + 1, col) ]
  in
  List.filter_map
    (fun (r, cl) ->
      if r < 0 || r >= t.config.rows || cl < 0 || cl >= c then None
      else Some ((r * c) + cl))
    candidates

(* Same visit order as [neighbours] — left, right, up, down — so
   callers drawing randomness per neighbour keep a bit-identical
   stream whichever entry point they use. *)
let iter_neighbours t i f =
  check_range t i;
  let c = t.config.cols in
  let row = i / c and col = i mod c in
  if col > 0 then f (i - 1);
  if col < c - 1 then f (i + 1);
  if row > 0 then f (i - c);
  if row < t.config.rows - 1 then f (i + c)

let heated_count t = t.heated
let heated_fraction t = float_of_int t.heated /. float_of_int (size t)

let capacity_bits t =
  let area_cm2 =
    float_of_int (size t) *. t.config.geometry.pitch *. t.config.geometry.pitch
    /. 1e-4
  in
  area_cm2 *. Physics.Constants.areal_density_bits_per_cm2 t.config.geometry

let iter_heated t f =
  for i = 0 to size t - 1 do
    if raw_get t i = 2 then f i
  done

let note_heated t i =
  check_range t i;
  if raw_get t i <> 2 then begin
    t.heated <- t.heated + 1;
    raw_set t i 2
  end
