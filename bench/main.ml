(* Bechamel benchmarks: one Test per paper artefact / experiment (see
   DESIGN.md experiment index), plus the codec hot paths that set the
   device's constant factors.

   These measure the *simulator's* execution cost (how long our code
   takes to emulate an operation); the *simulated* device latencies the
   paper cares about are reported by `bin/experiments`. *)

open Bechamel
open Toolkit

(* {1 Staged environments} *)

let small_device () =
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:64 ~line_exp:3 ())
  in
  List.iter
    (fun pba ->
      match Sero.Device.write_block dev ~pba "bench payload" with
      | Ok () -> ()
      | Error _ -> ())
    (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) 1);
  (match Sero.Device.heat_line dev ~line:1 () with Ok _ -> () | Error _ -> ());
  dev

let bit_ctx () =
  Pmedia.Bitops.make
    (Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:64 ~cols:64))

let bench_fs () =
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:1024 ~line_exp:3 ())
  in
  let fs = Lfs.Fs.format dev in
  (match Lfs.Fs.create fs "/bench" with Ok () -> () | Error e -> failwith e);
  fs

let payload_4k = String.init 4096 (fun i -> Char.chr (i mod 251))
let payload_512 = String.sub payload_4k 0 512

(* {1 The tests} *)

let figures =
  [
    Test.make ~name:"fig1 mfm trace (6 dots x 8 samples)"
      (Staged.stage (fun () ->
           let rng = Sim.Prng.create 17 in
           ignore
             (Physics.Mfm.trace Physics.Mfm.default_channel
                Physics.Constants.dot_200nm ~rng
                ~dots:
                  [| Physics.Mfm.Up; Physics.Mfm.Down; Physics.Mfm.Up;
                     Physics.Mfm.Up; Physics.Mfm.Destroyed; Physics.Mfm.Up |]
                ~samples_per_dot:8)));
    Test.make ~name:"fig2 transition table"
      (Staged.stage (fun () -> ignore Pmedia.Dot.transition_table));
    Test.make ~name:"fig7 anisotropy sweep (10 temps)"
      (Staged.stage (fun () ->
           ignore
             (Physics.Anisotropy.figure7_sweep Physics.Constants.co_pt
                ~temps_c:[ 25.; 100.; 200.; 300.; 400.; 500.; 550.; 600.; 650.; 700. ])));
    Test.make ~name:"fig8 low-angle xrd scan (241 pts)"
      (Staged.stage (fun () ->
           ignore
             (Physics.Xrd.low_angle_scan Physics.Constants.co_pt
                ~anneal_temp_c:(Some 700.))));
    Test.make ~name:"fig9 high-angle xrd scan (301 pts)"
      (Staged.stage (fun () ->
           ignore
             (Physics.Xrd.high_angle_scan Physics.Constants.co_pt
                ~anneal_temp_c:(Some 700.))));
  ]

let e7_bit_ops =
  let ctx = bit_ctx () in
  [
    Test.make ~name:"e7 mrb" (Staged.stage (fun () -> ignore (Pmedia.Bitops.mrb ctx 0)));
    Test.make ~name:"e7 mwb"
      (Staged.stage (fun () -> Pmedia.Bitops.mwb ctx 1 Pmedia.Dot.Up));
    Test.make ~name:"e7 erb (1 cycle)"
      (Staged.stage (fun () -> ignore (Pmedia.Bitops.erb ctx 2)));
    Test.make ~name:"e7 ewb (idempotent on heated dot)"
      (Staged.stage (fun () -> Pmedia.Bitops.ewb ctx 3));
  ]

let e7_sector_ops =
  let dev = small_device () in
  let data_pba = Sero.Layout.first_data_block (Sero.Device.layout dev) 2 in
  (* Hoisted out of the staged closure (like mws's pba) so the test
     measures the device read, not per-iteration list allocation. *)
  let read_pba = Sero.Layout.first_data_block (Sero.Device.layout dev) 1 in
  [
    Test.make ~name:"e7 mrs (read sector)"
      (Staged.stage (fun () -> ignore (Sero.Device.read_block dev ~pba:read_pba)));
    Test.make ~name:"e7 mws (write sector)"
      (Staged.stage (fun () ->
           ignore (Sero.Device.write_block dev ~pba:data_pba payload_512)));
    Test.make ~name:"e7 ers (electrical hash read)"
      (Staged.stage (fun () -> ignore (Sero.Device.read_hash_block dev ~line:1)));
  ]

let e8_line_ops =
  let dev = small_device () in
  [
    Test.make ~name:"e8 heat_line (idempotent re-heat, N=3)"
      (Staged.stage (fun () -> ignore (Sero.Device.heat_line dev ~line:1 ())));
    Test.make ~name:"e8 verify_line (N=3)"
      (Staged.stage (fun () -> ignore (Sero.Device.verify_line dev ~line:1)));
    Test.make ~name:"e8 full-device scan (8 lines)"
      (Staged.stage (fun () -> ignore (Sero.Device.scan dev)));
  ]

let e9_lfs =
  let fs = bench_fs () in
  [
    Test.make ~name:"e9 lfs 4KB overwrite (log append + CoW)"
      (Staged.stage (fun () ->
           match Lfs.Fs.write_file fs "/bench" ~offset:0 payload_4k with
           | Ok () -> ()
           | Error e -> failwith e));
    Test.make ~name:"e9 lfs 4KB read"
      (Staged.stage (fun () ->
           ignore (Lfs.Fs.read_range fs "/bench" ~offset:0 ~len:4096)));
    Test.make ~name:"e9 lfs sync (flush + checkpoint)"
      (Staged.stage (fun () -> Lfs.Fs.sync fs));
  ]

let e10_security =
  [
    Test.make ~name:"e10 mwb-data attack + audit (fresh env)"
      (Staged.stage (fun () ->
           ignore (Security.Attacks.run Security.Attacks.Mwb_data)));
  ]

let e11_worm =
  [
    Test.make ~name:"e11 worm comparison (6 technologies)"
      (Staged.stage (fun () ->
           ignore (Baseline.Compare.run_all Baseline.Compare.default_scenario)));
  ]

let e12_archive =
  let venti =
    Venti.create
      (Sero.Device.create (Sero.Device.default_config ~n_blocks:8192 ~line_exp:3 ()))
  in
  let fossil =
    Fossil.create
      (Sero.Device.create (Sero.Device.default_config ~n_blocks:16384 ~line_exp:3 ()))
  in
  let counter = ref 0 in
  [
    Test.make ~name:"e12 venti put_stream 4KB (unique)"
      (Staged.stage (fun () ->
           incr counter;
           ignore
             (Venti.put_stream venti (string_of_int !counter ^ payload_4k))));
    Test.make ~name:"e12 fossil insert (unique key)"
      (Staged.stage (fun () ->
           incr counter;
           ignore
             (Fossil.insert fossil
                ~key:(Printf.sprintf "bench-%d" !counter)
                ~value:"v")));
  ]

let e13_thermal =
  [
    Test.make ~name:"e13 damage sweep (24 design points)"
      (Staged.stage (fun () -> ignore (Expt.Thermal_study.damage_sweep ())));
    Test.make ~name:"e13 spreading comparison"
      (Staged.stage (fun () -> ignore (Expt.Thermal_study.spreading ())));
  ]

let e14_codec =
  [
    Test.make ~name:"e14 sha256 4KB" (Staged.stage (fun () -> ignore (Hash.Sha256.digest_string payload_4k)));
    Test.make ~name:"e14 manchester encode 32B hash"
      (Staged.stage (fun () ->
           ignore (Codec.Manchester.encode (String.sub payload_4k 0 32))));
    Test.make ~name:"e14 sector frame encode (RS + CRC)"
      (Staged.stage (fun () ->
           ignore
             (Codec.Sector.encode ~pba:7 ~kind:Codec.Sector.Data ~generation:1
                payload_512)));
    Test.make ~name:"e14 sector frame decode"
      (let image =
         Codec.Sector.encode ~pba:7 ~kind:Codec.Sector.Data ~generation:1 payload_512
       in
       Staged.stage (fun () -> ignore (Codec.Sector.decode image)));
    Test.make ~name:"e14 wom write"
      (Staged.stage (fun () -> ignore (Codec.Wom.write (Codec.Wom.encode_first 2) 1)));
  ]

let e16_erb =
  [
    Test.make ~name:"e16 erb miss-rate sweep (6 points, 2k trials)"
      (Staged.stage (fun () ->
           ignore (Expt.Erb_study.miss_sweep ~trials:2000 ())));
  ]

let e17_media =
  [
    Test.make ~name:"e17 defect sweep (3 rates, 24 sectors)"
      (Staged.stage (fun () ->
           ignore
             (Expt.Reliability.defect_sweep ~rates:[ 0.; 0.002; 0.008 ]
                ~sectors:24 ())));
  ]

let e18_fault =
  [
    Test.make ~name:"e18 ras read cell (24 sectors, 1 dead tip)"
      (Staged.stage (fun () ->
           ignore
             (Expt.Fault_study.run_cell ~n_blocks:32 ~sectors:24 ~ber:1e-4
                ~dead_tips:1 ~ras_on:true ~plan_seed:42 ())));
    Test.make ~name:"e18 scrub pass over torn line"
      (Staged.stage (fun () ->
           ignore (Expt.Fault_study.powercut_series ~cuts:[ 1 ] ())));
  ]

let e19_sched =
  let timing = Probe.Timing.create () in
  let act = Probe.Actuator.create timing ~pitch:100e-9 ~field_cols:64 in
  let rng = Sim.Prng.create 13 in
  let offsets = List.init 64 (fun _ -> Sim.Prng.int rng 4096) in
  [
    Test.make ~name:"e19 elevator ordering (64 requests)"
      (Staged.stage (fun () ->
           ignore (Probe.Sched.order Probe.Sched.Elevator ~current:0 offsets)));
    Test.make ~name:"e19 sstf ordering (64 requests)"
      (Staged.stage (fun () ->
           ignore (Probe.Sched.order Probe.Sched.Sstf ~current:0 offsets)));
    Test.make ~name:"e19 travel cost estimate"
      (Staged.stage (fun () ->
           ignore (Probe.Sched.travel_cost act ~current:0 offsets)));
  ]

let e20_queue =
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:512 ~line_exp:3 ())
  in
  let pbas =
    let lay = Sero.Device.layout dev in
    List.init (Sero.Layout.n_lines lay) Fun.id
    |> List.concat_map (Sero.Layout.data_blocks_of_line lay)
    |> Array.of_list
  in
  Array.iter
    (fun pba -> ignore (Sero.Device.write_block dev ~pba payload_512))
    pbas;
  let rng = Sim.Prng.create 29 in
  let picks =
    List.init 32 (fun _ -> pbas.(Sim.Prng.int rng (Array.length pbas)))
  in
  let round ~policy ~coalesce () =
    (* Fresh clock and queue per run; the device itself only reads. *)
    let q = Sero.Queue.create ~policy ~coalesce (Sim.Des.create ()) dev in
    List.iter (fun pba -> Sero.Queue.submit_read q ~pba (fun _ -> ())) picks;
    Sero.Queue.drain q
  in
  [
    Test.make ~name:"e20 queue 32 reads (elevator, coalescing)"
      (Staged.stage (round ~policy:Probe.Sched.Elevator ~coalesce:true));
    Test.make ~name:"e20 queue 32 reads (fifo, scalar)"
      (Staged.stage (round ~policy:Probe.Sched.Fifo ~coalesce:false));
    Test.make ~name:"e20 sync facade read_block"
      (let q = Sero.Queue.create (Sim.Des.create ()) dev in
       Staged.stage (fun () ->
           ignore (Sero.Queue.read_block q ~pba:pbas.(40))));
  ]

let e21_bcache =
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:256 ~line_exp:3 ())
  in
  let lay = Sero.Device.layout dev in
  let pbas = Array.of_list (Sero.Layout.data_blocks_of_line lay 1) in
  Array.iter
    (fun pba -> ignore (Sero.Device.write_block dev ~pba payload_512))
    pbas;
  let q = Sero.Queue.create (Sim.Des.create ()) dev in
  let bc = Sero.Bcache.create ~capacity:64 ~read_ahead:0 q in
  (match Sero.Bcache.read_block bc ~pba:pbas.(0) with
  | Ok _ -> ()
  | Error _ -> ());
  [
    Test.make ~name:"e21 bcache read hit (zero sled service)"
      (Staged.stage (fun () -> ignore (Sero.Bcache.read_block bc ~pba:pbas.(0))));
    Test.make ~name:"e21 bcache write absorb (write-behind)"
      (Staged.stage (fun () ->
           ignore (Sero.Bcache.write_block bc ~pba:pbas.(1) payload_512)));
    Test.make ~name:"e21 bcache flush + drain (1 dirty span)"
      (Staged.stage (fun () ->
           ignore (Sero.Bcache.write_block bc ~pba:pbas.(2) payload_512);
           Sero.Bcache.sync bc));
  ]

let e22_endurance =
  let dev =
    Sero.Device.create
      {
        (Sero.Device.default_config ~n_blocks:256 ~line_exp:3 ()) with
        Sero.Device.endurance = Sero.Device.active_endurance;
      }
  in
  let lay = Sero.Device.layout dev in
  let pbas = Array.of_list (Sero.Layout.data_blocks_of_line lay 1) in
  Array.iter
    (fun pba -> ignore (Sero.Device.write_block dev ~pba payload_512))
    pbas;
  let h = Sero.Device.health dev in
  [
    Test.make ~name:"e22 health note_decode + margin"
      (Staged.stage (fun () ->
           Sero.Health.note_decode h ~line:1 ~corrected:3;
           ignore (Sero.Health.margin h ~line:1)));
    Test.make ~name:"e22 next_due scan (healthy device)"
      (Staged.stage (fun () -> ignore (Sero.Device.next_due dev)));
    Test.make ~name:"e22 read_block with ledger accounting"
      (Staged.stage (fun () -> ignore (Sero.Device.read_block dev ~pba:pbas.(0))));
  ]

let e23_array =
  let v =
    Sarray.Volume.create
      (Sarray.Volume.default_config ~slots:2 ~replication:2 ~spares:0
         ~member_blocks:64 ())
  in
  let m = Sarray.Volume.map v in
  (* Line 0 filled and heated (read + attest targets); line 1 filled
     but left magnetic so write fan-out stays legal per iteration. *)
  List.iter
    (fun line ->
      for o = 0 to Sarray.Amap.data_blocks_per_line m - 1 do
        let vba = Sarray.Amap.vba_of m ~line ~offset:o in
        ignore (Sarray.Volume.write_block v ~vba payload_512)
      done)
    [ 0; 1 ];
  (match Sarray.Volume.heat_line v ~line:0 () with Ok _ -> () | Error _ -> ());
  Sarray.Volume.flush v;
  let read_vba = Sarray.Amap.vba_of m ~line:0 ~offset:0 in
  let write_vba = Sarray.Amap.vba_of m ~line:1 ~offset:0 in
  [
    Test.make ~name:"e23 volume read (mirror pair, cached)"
      (Staged.stage (fun () ->
           ignore (Sarray.Volume.read_block v ~vba:read_vba)));
    Test.make ~name:"e23 volume write fan-out (2 replicas)"
      (Staged.stage (fun () ->
           ignore (Sarray.Volume.write_block v ~vba:write_vba payload_512)));
    Test.make ~name:"e23 quorum attest one line"
      (Staged.stage (fun () ->
           ignore (Sarray.Quorum.attest_line_raw v ~line:0)));
  ]

let e24_zero_copy =
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:64 ~line_exp:3 ())
  in
  let lay = Sero.Device.layout dev in
  let pbas = Array.of_list (Sero.Layout.data_blocks_of_line lay 1) in
  Array.iter
    (fun pba -> ignore (Sero.Device.write_block dev ~pba payload_512))
    pbas;
  let first = pbas.(0) and n = Array.length pbas in
  [
    Test.make ~name:"e24 read_raw_view (packed, view out)"
      (Staged.stage (fun () -> ignore (Sero.Device.read_raw_view dev ~pba:first)));
    Test.make ~name:"e24 read_blocks span (7 sectors, 1 pass)"
      (Staged.stage (fun () ->
           ignore (Sero.Device.read_blocks dev ~pba:first ~n)));
    Test.make ~name:"e24 crc32 532B (slicing-by-8)"
      (let framed = String.sub payload_4k 0 532 in
       Staged.stage (fun () -> ignore (Codec.Crc32.string framed)));
  ]

let e25_host =
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:64 ~line_exp:3 ())
  in
  let lay = Sero.Device.layout dev in
  let pbas = Array.of_list (Sero.Layout.data_blocks_of_line lay 1) in
  Array.iter
    (fun pba -> ignore (Sero.Device.write_block dev ~pba payload_512))
    pbas;
  let q = Sero.Queue.create (Sim.Des.create ()) dev in
  let server = Host.Server.create (Host.Server.Device q) in
  let session = Host.Server.session server ~tenant:1 in
  let frame =
    { Host.Proto.tenant = 1; seq = 0; cmd = Read { pba = pbas.(0) } }
  in
  let encoded = Host.Proto.encode_frame frame in
  [
    Test.make ~name:"e25 frame encode+decode (read)"
      (Staged.stage (fun () ->
           ignore (Host.Proto.decode_frame (Host.Proto.encode_frame frame))));
    Test.make ~name:"e25 frame decode only"
      (Staged.stage (fun () -> ignore (Host.Proto.decode_frame encoded)));
    Test.make ~name:"e25 host read (admit+queue+respond)"
      (Staged.stage (fun () ->
           ignore (Host.Server.call session (Read { pba = pbas.(0) }))));
  ]

(* E26: the fleet substrate's wall-clock face — CoW clone cost and the
   classic hold-model churn on both scheduler twins (pop the minimum,
   reschedule it an exponential step later, dense pending set). *)
let e26_fleet =
  let golden =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:64 ~line_exp:3 ())
  in
  let lay = Sero.Device.layout golden in
  Array.iter
    (fun pba -> ignore (Sero.Device.write_block golden ~pba payload_512))
    (Array.of_list (Sero.Layout.data_blocks_of_line lay 1));
  let hold_rng = Sim.Prng.create 0xE26 in
  let wheel = Sim.Wheel.create () in
  let heap = Sim.Heap.create () in
  (* 4k live timers, every key within an exponential horizon of now —
     the shape a Des instance actually holds in the dense regime. *)
  for i = 0 to 4095 do
    let at = Sim.Prng.exponential hold_rng 1.0 in
    Sim.Wheel.push wheel at i;
    Sim.Heap.push heap at i
  done;
  [
    Test.make ~name:"e26 clone+park device"
      (Staged.stage (fun () ->
           let d = Sero.Device.clone golden in
           Sero.Device.park d));
    Test.make ~name:"e26 wheel hold (4k pending)"
      (Staged.stage (fun () ->
           let k = Sim.Wheel.min_key wheel in
           let v = Sim.Wheel.min_value wheel in
           Sim.Wheel.drop_min wheel;
           Sim.Wheel.push wheel (k +. Sim.Prng.exponential hold_rng 1.0) v));
    Test.make ~name:"e26 heap hold (4k pending)"
      (Staged.stage (fun () ->
           let k = Sim.Heap.min_key heap in
           let v = Sim.Heap.min_value heap in
           Sim.Heap.drop_min heap;
           Sim.Heap.push heap (k +. Sim.Prng.exponential hold_rng 1.0) v));
  ]

(* E27: one full campaign site per run — the mirror-split cell, which
   is the cheapest class (window-based array audit, no DES drain), so
   the bench tracks the whole clone/attack/audit/merge path. *)
let e27_campaign =
  [
    Test.make ~name:"e27 mirror-split site (1 site)"
      (Staged.stage (fun () ->
           ignore
             (Security.Campaign.run ~sites:1
                ~attack:Security.Campaign.Mirror_split
                ~adversary:Security.Campaign.default_adversary
                ~defender:Security.Campaign.reference_defender ())));
  ]

let groups =
  [
    ("figures (E1-E6)", figures);
    ("E7 bit ops", e7_bit_ops);
    ("E7 sector ops", e7_sector_ops);
    ("E8 line ops", e8_line_ops);
    ("E9 lfs", e9_lfs);
    ("E10 security", e10_security);
    ("E11 worm", e11_worm);
    ("E12 archive", e12_archive);
    ("E13 thermal", e13_thermal);
    ("E14 codec", e14_codec);
    ("E16 erb reliability", e16_erb);
    ("E17 media reliability", e17_media);
    ("E18 fault & RAS", e18_fault);
    ("E19 scheduling", e19_sched);
    ("E20 request queue", e20_queue);
    ("E21 buffer cache", e21_bcache);
    ("E22 endurance", e22_endurance);
    ("E23 sharded array", e23_array);
    ("E24 zero-copy", e24_zero_copy);
    ("E25 host front-end", e25_host);
    ("E26 fleet substrate", e26_fleet);
    ("E27 insider campaign", e27_campaign);
  ]

(* {1 Runner} *)

let ols =
  Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]

let human ns =
  if ns < 1e3 then Printf.sprintf "%8.1f ns" ns
  else if ns < 1e6 then Printf.sprintf "%8.2f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
  else Printf.sprintf "%8.2f s " (ns /. 1e9)

(* {1 Machine-readable output}

   Every run also writes BENCH_<sha>.json (test name -> ns/run, plus a
   deterministic "simulated" section with the E21 headline) at the repo
   root, so the perf trajectory is scriptable across commits.  With
   --compare BASELINE.json the run additionally prints per-group deltas
   against the baseline and exits non-zero when the simulated smoke set
   regresses by more than 25%. *)

let read_file path =
  try Some (In_channel.with_open_text path In_channel.input_all)
  with Sys_error _ -> None

(* The repo root (nearest ancestor holding [.git]) anchors both the
   HEAD lookup and the output file, so the bench lands BENCH_<sha>.json
   at the root no matter which directory launched it. *)
let repo_root () =
  let rec up dir n =
    if n = 0 then "."
    else if Sys.file_exists (Filename.concat dir ".git") then dir
    else up (Filename.concat dir Filename.parent_dir_name) (n - 1)
  in
  up Filename.current_dir_name 16

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* Resolve HEAD by hand: the bench must not depend on a git binary or
   any process spawning.  BENCH_SHA overrides (CI passes the commit it
   checked out); failing everything, the file is BENCH_local.json. *)
let git_sha () =
  let git p = Filename.concat (repo_root ()) (Filename.concat ".git" p) in
  let read_file p = read_file (git p) in
  let short s = if String.length s > 12 then String.sub s 0 12 else s in
  match Sys.getenv_opt "BENCH_SHA" with
  | Some s when s <> "" -> short (String.trim s)
  | Some _ | None -> (
      match read_file "HEAD" with
      | None -> "local"
      | Some head -> (
          let head = String.trim head in
          if not (starts_with ~prefix:"ref: " head) then short head
          else
            let r = String.sub head 5 (String.length head - 5) in
            match read_file r with
            | Some sha -> short (String.trim sha)
            | None -> (
                (* Ref not loose: scan packed-refs. *)
                match read_file "packed-refs" with
                | None -> "local"
                | Some packed ->
                    String.split_on_char '\n' packed
                    |> List.find_map (fun line ->
                           match String.index_opt line ' ' with
                           | Some i
                             when String.equal
                                    (String.sub line (i + 1)
                                       (String.length line - i - 1))
                                    r ->
                               Some (short (String.sub line 0 i))
                           | Some _ | None -> None)
                    |> Option.value ~default:"local")))

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* {2 The simulated smoke set}

   Deterministic simulated-device metrics (the E21 headline cell pair):
   unlike ns/run these are byte-stable across machines and quotas, so
   --compare enforces them as the regression gate. *)

let simulated_metrics () =
  let h = Expt.Cache_study.headline () in
  let e = Expt.Endurance_study.headline () in
  let a = Expt.Array_study.headline () in
  let qos = Expt.Qos_study.headline () in
  let fleet = Expt.Fleet_study.headline () in
  let camp = Expt.Campaign_study.headline () in
  let race_pct =
    if camp.Expt.Campaign_study.h_races = 0 then 0.
    else
      100.
      *. float_of_int camp.Expt.Campaign_study.h_race_wins
      /. float_of_int camp.Expt.Campaign_study.h_races
  in
  [
    ("e21 nocache read ms", h.Expt.Cache_study.nocache_read_ms);
    ("e21 cached read ms", h.Expt.Cache_study.cached_read_ms);
    ("e21 read speedup", h.Expt.Cache_study.speedup);
    ("e21 hit pct", h.Expt.Cache_study.headline_hit_pct);
    ("e22 lost off", e.Expt.Endurance_study.lost_off);
    ("e22 lost on", e.Expt.Endurance_study.lost_on);
    ("e22 saved pct", e.Expt.Endurance_study.saved_pct);
    ("e22 audit pct", e.Expt.Endurance_study.audit_pct);
    ("e23 undetected loss", a.Expt.Array_study.h_undetected);
    ("e23 detected replicas", a.Expt.Array_study.h_detected);
    ("e23 rebuild pct", a.Expt.Array_study.h_rebuild_pct);
    ("e23 attested pct", a.Expt.Array_study.h_attested_pct);
    ("e23 audit per line", a.Expt.Array_study.h_audit_per_line);
    ("e25 solo read p99 ms", qos.Expt.Qos_study.solo_p99_ms);
    ("e25 wfs p99 ratio", qos.Expt.Qos_study.wfs_ratio);
    ("e25 fifo p99 ratio", qos.Expt.Qos_study.fifo_ratio);
    ("e25 rejection pct", qos.Expt.Qos_study.overload_rejection_pct);
    ("e26 wheel speedup", fleet.Expt.Fleet_study.h_wheel_speedup);
    ("e26 clone heap kib", fleet.Expt.Fleet_study.h_clone_heap_kib);
    ("e26 clone segments", fleet.Expt.Fleet_study.h_clone_segments);
    ("e26 cow kib per device", fleet.Expt.Fleet_study.h_cow_kib_per_device);
    ("e26 fleet p99 ms", fleet.Expt.Fleet_study.h_lat_p99_ms);
    ("e26 tamper verdicts", float_of_int fleet.Expt.Fleet_study.h_tampers);
    ( "e27 undetected at ref",
      float_of_int camp.Expt.Campaign_study.h_ref_undetected );
    ("e27 det p50 ms", camp.Expt.Campaign_study.h_ref_det_p50_ms);
    ("e27 det p99 ms", camp.Expt.Campaign_study.h_ref_det_p99_ms);
    ( "e27 audit spend",
      float_of_int camp.Expt.Campaign_study.h_ref_audit_spend );
    ( "e27 starved undetected",
      float_of_int camp.Expt.Campaign_study.h_starved_undetected );
    ("e27 race win pct", race_pct);
    ( "e27 spares burned",
      float_of_int camp.Expt.Campaign_study.h_spares_burned );
  ]

(* Allocation observability for the zero-copy hot path: bytes copied by
   the device per operation (0.00 when the packed kernels serve the
   request straight from / into the Bigarray store) and minor-heap words
   allocated per operation.  Both are deterministic — a function of the
   code path, not the machine or the quota — so they ride in the
   "simulated" section and the --compare gate watches them. *)
let counter_metrics () =
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:64 ~line_exp:3 ())
  in
  let lay = Sero.Device.layout dev in
  let pba = Sero.Layout.first_data_block lay 1 in
  ignore (Sero.Device.write_block dev ~pba payload_512);
  let per_op f =
    f ();
    (* warm: lazy tables, scratch growth *)
    let c0 = Sero.Device.bytes_copied dev in
    let w0 = Gc.minor_words () in
    let n = 1000 in
    for _ = 1 to n do
      f ()
    done;
    let dw = Gc.minor_words () -. w0 in
    let dc = Sero.Device.bytes_copied dev - c0 in
    (float_of_int dc /. float_of_int n, dw /. float_of_int n)
  in
  let rcopy, rwords = per_op (fun () -> ignore (Sero.Device.read_block dev ~pba)) in
  let wcopy, wwords =
    per_op (fun () -> ignore (Sero.Device.write_block dev ~pba payload_512))
  in
  [
    ("e24 read bytes copied", rcopy);
    ("e24 read minor words", rwords);
    ("e24 write bytes copied", wcopy);
    ("e24 write minor words", wwords);
  ]

let pp_section oc name kvs last =
  Printf.fprintf oc "  \"%s\": {\n" name;
  List.iteri
    (fun i (k, v) ->
      Printf.fprintf oc "    \"%s\": %.2f%s\n" (json_escape k) v
        (if i = List.length kvs - 1 then "" else ","))
    kvs;
  Printf.fprintf oc "  }%s\n" (if last then "" else ",")

let write_json ~sha ~quota ~simulated results =
  let path = Filename.concat (repo_root ()) (Printf.sprintf "BENCH_%s.json" sha) in
  Out_channel.with_open_text path (fun oc ->
      Printf.fprintf oc "{\n  \"sha\": \"%s\",\n  \"quota_s\": %g,\n"
        (json_escape sha) quota;
      pp_section oc "ns_per_run" results false;
      pp_section oc "simulated" simulated true;
      Printf.fprintf oc "}\n");
  path

(* {2 Baseline comparison}

   The baseline is a file this very program wrote, so a line-oriented
   scan is enough: inside a section, every line is ["name": value,]. *)

let parse_baseline path =
  match read_file path with
  | None -> Error (Printf.sprintf "cannot read baseline %s" path)
  | Some text ->
      let section = ref "" in
      let ns = ref [] and sim = ref [] in
      String.split_on_char '\n' text
      |> List.iter (fun line ->
             let line = String.trim line in
             match String.split_on_char '"' line with
             | [ _; name; tail ] -> (
                 let tail = String.trim tail in
                 if String.length tail > 0 && tail.[0] = ':' then
                   let v = String.sub tail 1 (String.length tail - 1) in
                   let v = String.trim v in
                   let v =
                     if String.length v > 0 && v.[String.length v - 1] = ','
                     then String.sub v 0 (String.length v - 1)
                     else v
                   in
                   match (v, float_of_string_opt v) with
                   | "{", _ -> section := name
                   | _, Some f ->
                       if String.equal !section "ns_per_run" then
                         ns := (name, f) :: !ns
                       else if String.equal !section "simulated" then
                         sim := (name, f) :: !sim
                   | _, None -> ())
             | _ -> ());
      Ok (List.rev !ns, List.rev !sim)

(* ns/run deltas are informational (they move with the machine and the
   quota); the simulated metrics are deterministic and gate the run. *)
let compare_baseline ~baseline ~results ~simulated =
  match parse_baseline baseline with
  | Error e ->
      Printf.printf "compare: %s\n" e;
      false
  | Ok (base_ns, base_sim) ->
      Printf.printf "\ncomparison against %s (informational ns/run deltas)\n"
        baseline;
      let by_group = Hashtbl.create 16 in
      List.iter
        (fun (group, name, ns) ->
          match List.assoc_opt name base_ns with
          | None -> ()
          | Some old when old > 0. && ns > 0. ->
              let cur = try Hashtbl.find by_group group with Not_found -> [] in
              Hashtbl.replace by_group group ((ns /. old) :: cur)
          | Some _ -> ())
        results;
      List.iter
        (fun (group, _) ->
          match Hashtbl.find_opt by_group group with
          | None | Some [] -> ()
          | Some ratios ->
              let geo =
                exp
                  (List.fold_left (fun a r -> a +. log r) 0. ratios
                  /. float_of_int (List.length ratios))
              in
              Printf.printf "  %-24s %+6.1f%% (%d tests)\n" group
                ((geo -. 1.) *. 100.)
                (List.length ratios))
        groups;
      let ok = ref true in
      Printf.printf "simulated smoke set (gated at +25%%)\n";
      List.iter
        (fun (name, now) ->
          match List.assoc_opt name base_sim with
          | None -> Printf.printf "  %-24s %10.2f (new metric)\n" name now
          | Some old ->
              (* "...pct" metrics, the cache speedup and the quorum
                 detection count are higher-is-better; the latency and
                 loss metrics lower-is-better. *)
              let higher_better =
                String.length name >= 4
                && String.equal (String.sub name (String.length name - 3) 3)
                     "pct"
                || List.mem name
                     [
                       "e21 read speedup";
                       "e23 detected replicas";
                       "e25 fifo p99 ratio";
                       "e26 wheel speedup";
                       "e27 starved undetected";
                     ]
              in
              let regressed =
                if higher_better then now < old *. 0.75
                else now > old *. 1.25
              in
              if regressed then ok := false;
              Printf.printf "  %-24s %10.2f -> %10.2f  %s\n" name old now
                (if regressed then "REGRESSED" else "ok"))
        simulated;
      !ok

let baseline_arg () =
  let rec go = function
    | "--compare" :: path :: _ -> Some path
    | _ :: rest -> go rest
    | [] -> None
  in
  go (Array.to_list Sys.argv)

let () =
  let quota =
    match Sys.getenv_opt "BENCH_QUOTA_MS" with
    | Some ms -> float_of_string ms /. 1000.
    | None -> 0.4
  in
  let cfg =
    Benchmark.cfg ~limit:1500 ~quota:(Time.second quota) ~kde:None
      ~stabilize:false ()
  in
  let instances = Instance.[ monotonic_clock ] in
  Printf.printf "SERO benchmark suite (quota %.1fs per test)\n" quota;
  Printf.printf "%-48s %12s %8s\n" "benchmark" "time/run" "r^2";
  print_endline (String.make 72 '-');
  let collected = ref [] in
  List.iter
    (fun (group, tests) ->
      Printf.printf "%s\n" group;
      List.iter
        (fun test ->
          let results =
            Benchmark.all cfg instances
              (Test.make_grouped ~name:"g" [ test ])
          in
          let analysis = Analyze.all ols Instance.monotonic_clock results in
          Hashtbl.iter
            (fun name ols_result ->
              let estimate =
                match Analyze.OLS.estimates ols_result with
                | Some (e :: _) -> e
                | Some [] | None -> Float.nan
              in
              let r2 =
                match Analyze.OLS.r_square ols_result with
                | Some r -> Printf.sprintf "%6.3f" r
                | None -> "     -"
              in
              (* Strip the group prefix bechamel adds. *)
              let name =
                match String.index_opt name '/' with
                | Some i -> String.sub name (i + 1) (String.length name - i - 1)
                | None -> name
              in
              collected := (group, name, estimate) :: !collected;
              Printf.printf "  %-46s %s %8s\n" name (human estimate) r2)
            analysis)
        tests)
    groups;
  print_endline (String.make 72 '-');
  let results = List.rev !collected in
  let simulated = simulated_metrics () @ counter_metrics () in
  Printf.printf "simulated smoke set (deterministic)\n";
  List.iter
    (fun (name, v) -> Printf.printf "  %-46s %10.2f\n" name v)
    simulated;
  let path =
    write_json ~sha:(git_sha ()) ~quota ~simulated
      (List.map (fun (_, name, ns) -> (name, ns)) results)
  in
  Printf.printf "machine-readable results: %s\n" path;
  print_endline
    "simulated-device latencies and the paper's series: dune exec bin/experiments.exe -- all";
  match baseline_arg () with
  | None -> ()
  | Some baseline ->
      if not (compare_baseline ~baseline ~results ~simulated) then begin
        print_endline "FAIL: simulated smoke set regressed past the 25% gate";
        exit 1
      end
