type score = Hash.Sha256.t

type stats = {
  blocks_stored : int;
  bytes_stored : int;
  dedup_hits : int;
  lines_heated : int;
}

type t = {
  dev : Sero.Device.t;
  lay : Sero.Layout.t;
  eager_heat : bool;
  index : (string, int) Hashtbl.t; (* raw score -> pba *)
  mutable current_line : int;
  mutable used_in_line : int; (* data blocks consumed in current line *)
  mutable blocks_stored : int;
  mutable bytes_stored : int;
  mutable dedup_hits : int;
  mutable lines_heated : int;
}

let create ?(eager_heat = true) dev =
  {
    dev;
    lay = Sero.Device.layout dev;
    eager_heat;
    index = Hashtbl.create 256;
    current_line = 0;
    used_in_line = 0;
    blocks_stored = 0;
    bytes_stored = 0;
    dedup_hits = 0;
    lines_heated = 0;
  }

let device t = t.dev

let stats t =
  {
    blocks_stored = t.blocks_stored;
    bytes_stored = t.bytes_stored;
    dedup_hits = t.dedup_hits;
    lines_heated = t.lines_heated;
  }

let max_block = Codec.Sector.payload_bytes - 2 (* u16 length header *)
let data_per_line t = Sero.Layout.data_blocks_per_line t.lay

let heat_line t line =
  (* Pad unwritten data blocks so the device can hash the line. *)
  List.iter
    (fun pba ->
      match Sero.Device.read_block t.dev ~pba with
      | Ok _ -> ()
      | Error _ ->
          (match
             Sero.Device.write_block t.dev ~pba
               (String.make Codec.Sector.payload_bytes '\x00')
           with
          | Ok () -> ()
          | Error e ->
              failwith
                (Format.asprintf "venti: pad of %d refused: %a" pba
                   Sero.Device.pp_write_error e)))
    (Sero.Layout.data_blocks_of_line t.lay line);
  match Sero.Device.heat_line t.dev ~line () with
  | Ok _ -> t.lines_heated <- t.lines_heated + 1
  | Error Sero.Device.Already_heated -> ()
  | Error e ->
      failwith
        (Format.asprintf "venti: heat of line %d failed: %a" line
           Sero.Device.pp_heat_error e)

let rec alloc t =
  if t.current_line >= Sero.Layout.n_lines t.lay then
    failwith "venti: arena full"
  else if Sero.Device.is_line_heated t.dev ~line:t.current_line then begin
    (* Resuming after reindex: the tail line may already be burned. *)
    t.current_line <- t.current_line + 1;
    t.used_in_line <- 0;
    alloc t
  end
  else if t.used_in_line >= data_per_line t then begin
    if t.eager_heat then heat_line t t.current_line;
    t.current_line <- t.current_line + 1;
    t.used_in_line <- 0;
    alloc t
  end
  else begin
    let pba =
      List.nth
        (Sero.Layout.data_blocks_of_line t.lay t.current_line)
        t.used_in_line
    in
    t.used_in_line <- t.used_in_line + 1;
    pba
  end

let frame content =
  let w = Codec.Binio.W.create ~capacity:(String.length content + 2) () in
  Codec.Binio.W.u16 w (String.length content);
  Codec.Binio.W.raw w content;
  Codec.Binio.W.contents w

let unframe payload =
  let r = Codec.Binio.R.of_string payload in
  match
    let len = Codec.Binio.R.u16 r in
    Codec.Binio.R.raw r len
  with
  | exception Codec.Binio.R.Truncated -> None
  | content -> Some content

let reindex ?eager_heat dev =
  let t = create ?eager_heat dev in
  let exception Stop in
  (try
     for line = 0 to Sero.Layout.n_lines t.lay - 1 do
       let blanks = ref 0 in
       List.iteri
         (fun i pba ->
           match Sero.Device.read_block dev ~pba with
           | Error _ -> incr blanks
           | Ok payload -> (
               match unframe payload with
               | None -> ()
               | Some "" -> () (* padding, or an empty block: not indexed *)
               | Some content ->
                   let score = Hash.Sha256.digest_string content in
                   Hashtbl.replace t.index (Hash.Sha256.to_raw score) pba;
                   t.blocks_stored <- t.blocks_stored + 1;
                   t.bytes_stored <- t.bytes_stored + String.length content;
                   t.current_line <- line;
                   t.used_in_line <- i + 1))
         (Sero.Layout.data_blocks_of_line t.lay line);
       (* A fully blank line ends the arena. *)
       if !blanks = Sero.Layout.data_blocks_per_line t.lay then raise Stop
     done
   with Stop -> ());
  Sero.Device.refresh_heated_cache dev;
  Ok t

let put t content =
  if String.length content > max_block then
    Error
      (Printf.sprintf "venti: block of %d bytes exceeds %d"
         (String.length content) max_block)
  else begin
    let score = Hash.Sha256.digest_string content in
    let key = Hash.Sha256.to_raw score in
    match Hashtbl.find_opt t.index key with
    | Some _ ->
        t.dedup_hits <- t.dedup_hits + 1;
        Ok score
    | None -> (
        let pba = alloc t in
        match Sero.Device.write_block t.dev ~pba (frame content) with
        | Error e ->
            Error (Format.asprintf "venti: write refused: %a" Sero.Device.pp_write_error e)
        | Ok () ->
            Hashtbl.replace t.index key pba;
            t.blocks_stored <- t.blocks_stored + 1;
            t.bytes_stored <- t.bytes_stored + String.length content;
            Ok score)
  end

let get t score =
  let key = Hash.Sha256.to_raw score in
  match Hashtbl.find_opt t.index key with
  | None -> Error "venti: unknown score"
  | Some pba -> (
      match Sero.Device.read_block t.dev ~pba with
      | Error e ->
          Error (Format.asprintf "venti: read failed: %a" Sero.Device.pp_read_error e)
      | Ok payload -> (
          match unframe payload with
          | None -> Error "venti: stored block does not unframe"
          | Some content ->
              if Hash.Sha256.equal (Hash.Sha256.digest_string content) score
              then Ok content
              else Error "venti: content does not match its score"))

let mem t score = Hashtbl.mem t.index (Hash.Sha256.to_raw score)

(* {1 Streams: hash trees} *)

let leaf_tag = 'L'
let node_tag = 'I'
let chunk_size = 480
let fanout = 14 (* 1 tag + 2 count + 14 * 32 = 451 bytes per node *)

let ( let* ) = Result.bind

let encode_leaf data = String.make 1 leaf_tag ^ data

let encode_node scores =
  let w = Codec.Binio.W.create () in
  Codec.Binio.W.u8 w (Char.code node_tag);
  Codec.Binio.W.u16 w (List.length scores);
  List.iter (fun s -> Codec.Binio.W.raw w (Hash.Sha256.to_raw s)) scores;
  Codec.Binio.W.contents w

let rec put_level t scores =
  match scores with
  | [ root ] -> Ok root
  | [] -> put t (encode_node [])
  | _ ->
      let rec batch acc current n = function
        | [] ->
            let acc = if current = [] then acc else List.rev current :: acc in
            List.rev acc
        | s :: rest ->
            if n = fanout then batch (List.rev current :: acc) [ s ] 1 rest
            else batch acc (s :: current) (n + 1) rest
      in
      let batches = batch [] [] 0 scores in
      let* parents =
        List.fold_left
          (fun acc b ->
            let* acc = acc in
            let* s = put t (encode_node b) in
            Ok (s :: acc))
          (Ok []) batches
      in
      put_level t (List.rev parents)

let put_stream t data =
  let n = String.length data in
  let n_chunks = max 1 ((n + chunk_size - 1) / chunk_size) in
  let* leaves =
    List.fold_left
      (fun acc i ->
        let* acc = acc in
        let off = i * chunk_size in
        let take = min chunk_size (n - off) in
        let* s = put t (encode_leaf (String.sub data off (max take 0))) in
        Ok (s :: acc))
      (Ok [])
      (List.init n_chunks (fun i -> i))
  in
  let leaves = List.rev leaves in
  match leaves with
  | [ single ] -> Ok single
  | _ -> put_level t leaves

let rec get_stream t score =
  let* content = get t score in
  if String.length content = 0 then Error "venti: empty node"
  else if content.[0] = leaf_tag then
    Ok (String.sub content 1 (String.length content - 1))
  else if content.[0] = node_tag then begin
    let r = Codec.Binio.R.of_string content in
    match
      let _tag = Codec.Binio.R.u8 r in
      let count = Codec.Binio.R.u16 r in
      let rec go k acc =
        if k = 0 then List.rev acc
        else go (k - 1) (Hash.Sha256.of_raw (Codec.Binio.R.raw r 32) :: acc)
      in
      go count []
    with
    | exception Codec.Binio.R.Truncated -> Error "venti: node truncated"
    | children ->
        let* parts =
          List.fold_left
            (fun acc c ->
              let* acc = acc in
              let* part = get_stream t c in
              Ok (part :: acc))
            (Ok []) children
        in
        Ok (String.concat "" (List.rev parts))
  end
  else Error "venti: unknown node tag"

(* {1 Snapshots} *)

type snapshot = { label : string; root : score; taken_at : float }

let encode_catalogue files =
  let w = Codec.Binio.W.create () in
  Codec.Binio.W.u32 w (List.length files);
  List.iter
    (fun (name, root) ->
      Codec.Binio.W.str w name;
      Codec.Binio.W.raw w (Hash.Sha256.to_raw root))
    files;
  Codec.Binio.W.contents w

let decode_catalogue s =
  let r = Codec.Binio.R.of_string s in
  match
    let n = Codec.Binio.R.u32 r in
    let rec go k acc =
      if k = 0 then List.rev acc
      else begin
        let name = Codec.Binio.R.str r in
        let root = Hash.Sha256.of_raw (Codec.Binio.R.raw r 32) in
        go (k - 1) ((name, root) :: acc)
      end
    in
    go n []
  with
  | exception Codec.Binio.R.Truncated -> None
  | v -> Some v

let line_of_score t score =
  Option.map
    (fun pba -> Sero.Layout.line_of_block t.lay pba)
    (Hashtbl.find_opt t.index (Hash.Sha256.to_raw score))

let snapshot t ~label files =
  let* catalogue =
    List.fold_left
      (fun acc (name, data) ->
        let* acc = acc in
        let* root = put_stream t data in
        Ok ((name, root) :: acc))
      (Ok []) files
  in
  let* root = put_stream t (encode_catalogue (List.rev catalogue)) in
  (* The root's line must be burned now, even if not yet full. *)
  (match line_of_score t root with
  | Some line -> heat_line t line
  | None -> ());
  Ok { label; root; taken_at = Probe.Pdevice.elapsed (Sero.Device.pdevice t.dev) }

let restore t snap =
  let* cat_bytes = get_stream t snap.root in
  match decode_catalogue cat_bytes with
  | None -> Error "venti: snapshot catalogue corrupt"
  | Some entries ->
      List.fold_left
        (fun acc (name, root) ->
          let* acc = acc in
          let* data = get_stream t root in
          Ok ((name, data) :: acc))
        (Ok []) entries
      |> Result.map List.rev

(* Collect every line referenced by a tree. *)
let rec tree_lines t score acc =
  let acc =
    match line_of_score t score with Some l -> l :: acc | None -> acc
  in
  match get t score with
  | Error _ -> acc
  | Ok content ->
      if String.length content > 0 && content.[0] = node_tag then begin
        let r = Codec.Binio.R.of_string content in
        match
          let _ = Codec.Binio.R.u8 r in
          let count = Codec.Binio.R.u16 r in
          let rec go k acc =
            if k = 0 then acc
            else
              go (k - 1)
                (tree_lines t (Hash.Sha256.of_raw (Codec.Binio.R.raw r 32)) acc)
          in
          go count acc
        with
        | exception Codec.Binio.R.Truncated -> acc
        | acc -> acc
      end
      else acc

let verify_snapshot t snap =
  let* contents = restore t snap in
  ignore contents;
  let* cat_bytes = get_stream t snap.root in
  let lines =
    match decode_catalogue cat_bytes with
    | None -> []
    | Some entries ->
        List.sort_uniq compare
          (List.fold_left
             (fun acc (_, root) -> tree_lines t root acc)
             (tree_lines t snap.root []) entries)
  in
  let bad =
    List.filter_map
      (fun line ->
        match Sero.Device.verify_line t.dev ~line with
        | Sero.Tamper.Intact -> None
        | Sero.Tamper.Not_heated ->
            if t.eager_heat then Some (line, "not heated") else None
        | Sero.Tamper.Tampered evs ->
            Some
              ( line,
                Format.asprintf "%a" Sero.Tamper.pp_verdict
                  (Sero.Tamper.Tampered evs) ))
      lines
  in
  match bad with
  | [] -> Ok ()
  | (line, why) :: _ ->
      Error (Printf.sprintf "venti: line %d failed verification: %s" line why)
