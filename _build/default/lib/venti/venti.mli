(** A Venti-style content-addressed archival store on a SERO device
    (Section 4.2, first proposal; after Quinlan & Dorward).

    Data is stored in immutable blocks addressed by their SHA-256
    {e score}; hash trees are built from the leaves up, with parents
    holding the scores of their children, so one root score
    authenticates an arbitrary snapshot.  On an ordinary Venti the root
    must be "stored securely" somewhere else; on a SERO device the store
    simply {e heats the line holding the root}, making the whole
    hierarchy tamper-evident in place.

    The store appends blocks line-by-line (block 0 of each line stays
    reserved for the burned hash) and heats a line as soon as it fills —
    archival data never changes, so eager heating costs no flexibility
    and means every stored byte is covered by a burned hash. *)

type t

type score = Hash.Sha256.t
(** The address of a block: the SHA-256 of its contents. *)

val create : ?eager_heat:bool -> Sero.Device.t -> t
(** Manage a device as a Venti arena.  [eager_heat] (default true)
    burns each line's hash the moment the line fills. *)

val reindex : ?eager_heat:bool -> Sero.Device.t -> (t, string) result
(** Rebuild a store handle over an existing arena by re-reading and
    re-hashing every stored block — the score index is pure derived
    state, as it must be for an archival store.  Zero-length blocks are
    indistinguishable from line padding and are not re-indexed. *)

val device : t -> Sero.Device.t

val put : t -> string -> (score, string) result
(** Store a block of at most 510 bytes (the 512-byte sector payload
    minus the length header; longer inputs are an error — the client
    chunks, see {!put_stream}).  Returns its score.  Duplicate content
    dedupes to the same score and PBA. *)

val get : t -> score -> (string, string) result
(** Retrieve by score; verifies the content against the score. *)

val mem : t -> score -> bool

(** {1 Hash trees and snapshots} *)

val put_stream : t -> string -> (score, string) result
(** Chunk an arbitrary-length byte stream into leaves, build the hash
    tree bottom-up, store every node, and return the root score. *)

val get_stream : t -> score -> (string, string) result
(** Reassemble and verify a stream stored by {!put_stream}. *)

type snapshot = {
  label : string;
  root : score;
  taken_at : float;
}

val snapshot : t -> label:string -> (string * string) list -> (snapshot, string) result
(** Archive a set of named streams as one snapshot: each [(name, data)]
    becomes a stream, the catalogue of (name, root) pairs becomes the
    snapshot block, and its score is the snapshot root.  The line
    holding the root is heated immediately, whatever [eager_heat] says:
    the root is what must be tamper-evident. *)

val restore : t -> snapshot -> ((string * string) list, string) result
(** Read back and verify the full contents of a snapshot. *)

val verify_snapshot : t -> snapshot -> (unit, string) result
(** Walk the tree, re-hashing every node, and check the device-level
    verdicts of every line touched. *)

type stats = {
  blocks_stored : int;
  bytes_stored : int;
  dedup_hits : int;
  lines_heated : int;
}

val stats : t -> stats
