type axis = Perpendicular | In_plane | Tilted

let equal_axis a b =
  match (a, b) with
  | Perpendicular, Perpendicular | In_plane, In_plane | Tilted, Tilted -> true
  | (Perpendicular | In_plane | Tilted), _ -> false

let pp_axis ppf a =
  Format.pp_print_string ppf
    (match a with
    | Perpendicular -> "perpendicular"
    | In_plane -> "in-plane"
    | Tilted -> "tilted")

let arrhenius_fraction ~ea ~nu ~temp_c ~duration =
  if duration <= 0. then 0.
  else begin
    let t_k = Constants.celsius_to_kelvin temp_c in
    if t_k <= 0. then 0.
    else
      let rate = nu *. exp (-.ea /. (Constants.boltzmann *. t_k)) in
      1. -. exp (-.rate *. duration)
  end

let mixing_fraction (m : Constants.material) ~temp_c ~duration =
  arrhenius_fraction ~ea:m.mix_activation_energy ~nu:m.mix_attempt_rate
    ~temp_c ~duration

let crystallised_fraction (m : Constants.material) ~temp_c ~duration =
  arrhenius_fraction ~ea:m.cryst_activation_energy ~nu:m.cryst_attempt_rate
    ~temp_c ~duration

let k_as_grown (m : Constants.material) = m.k_interface

let k_after_anneal (m : Constants.material) ~temp_c =
  let mix = mixing_fraction m ~temp_c ~duration:m.anneal_duration in
  m.k_interface *. (1. -. mix)

let easy_axis_after_anneal (m : Constants.material) ~temp_c =
  let k = k_after_anneal m ~temp_c in
  if k > 0.5 *. m.k_interface then Perpendicular
  else
    let c = crystallised_fraction m ~temp_c ~duration:m.anneal_duration in
    if c > 0.5 then Tilted else In_plane

let destruction_threshold_c (m : Constants.material) =
  (* Bisection on the monotone K(T) for the half-anisotropy point. *)
  let target = 0.5 *. m.k_interface in
  let lo = ref 0. and hi = ref 2000. in
  while !hi -. !lo > 1. do
    let mid = (!lo +. !hi) /. 2. in
    if k_after_anneal m ~temp_c:mid > target then lo := mid else hi := mid
  done;
  !hi

let figure7_sweep m ~temps_c =
  List.map (fun t -> (t, k_after_anneal m ~temp_c:t /. 1e3)) temps_c
