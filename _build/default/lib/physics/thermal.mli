(** Thermal model of the electrical write (tip-current heating).

    The ewb operation passes a current from the probe tip through the dot
    into the medium (Section 3); the dot must reach the interface-mixing
    temperature ({!Anisotropy.destruction_threshold_c}) during a short
    pulse.  Laterally, heat leaks towards neighbouring dots; the paper
    (Section 7) flags neighbour damage as the key reliability risk and
    argues that (a) substrate heat-sinking limits the heated area and
    (b) the Manchester encoding keeps heated dots spread out.

    The lateral profile combines point-source spreading with an
    exponential cut-off from substrate conduction:

    {v dT(r) = dT_peak * (r0 / (r0 + r)) * exp(-r / lambda) v}

    where [lambda] is the lateral decay length (small when the substrate
    conducts well).  Neighbour damage during a pulse follows the same
    Arrhenius kinetics as annealing, evaluated at the neighbour's
    temperature for the pulse duration. *)

type profile = {
  peak_temp_c : float;  (** Temperature reached by the target dot. *)
  pulse : float;  (** Pulse duration, s. *)
  r0 : float;  (** Source radius (≈ dot radius), m. *)
  decay_length : float;  (** Lateral decay length lambda, m. *)
  ambient_c : float;
}

val default_profile : Constants.dot_geometry -> profile
(** 1650 °C peak, 100 µs pulse, lambda = pitch/2, 25 °C ambient: at
    pulse timescales the Arrhenius kinetics need far more than the
    anneal threshold (~1550 °C for the Co/Pt stack), while the combined
    1/r and exponential lateral decay keeps the neighbouring dot cool
    enough that its damage probability is negligible. *)

val temperature_at : profile -> float -> float
(** [temperature_at p r] — temperature (°C) at lateral distance [r]
    from the pulse centre. *)

val neighbour_temperature : profile -> pitch:float -> float
(** Temperature of the nearest neighbouring dot. *)

val damage_probability : Constants.material -> profile -> r:float -> float
(** Probability that the dot at distance [r] loses its interfaces during
    the pulse (the mixing fraction reached counts as the probability of
    destroying a single dot's delicate stack). *)

val neighbour_damage_probability :
  Constants.material -> profile -> pitch:float -> float

val target_destroyed : Constants.material -> profile -> bool
(** Does the pulse actually destroy the target dot (mixing fraction at
    the centre > 0.999)?  A profile that fails this is an under-powered
    ewb and the device must retry with more energy. *)

val pulse_energy : profile -> float
(** Rough electrical energy of the pulse in joules, assuming the tip
    dissipates [dT * G] with a thermal conductance derived from [r0] and
    the decay length; used for the energy ledger only. *)
