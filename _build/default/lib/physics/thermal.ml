type profile = {
  peak_temp_c : float;
  pulse : float;
  r0 : float;
  decay_length : float;
  ambient_c : float;
}

let default_profile (g : Constants.dot_geometry) =
  {
    peak_temp_c = 1650.;
    pulse = 100e-6;
    r0 = g.diameter /. 2.;
    decay_length = g.pitch /. 2.;
    ambient_c = 25.;
  }

let temperature_at p r =
  if r <= 0. then p.peak_temp_c
  else
    let dt = p.peak_temp_c -. p.ambient_c in
    p.ambient_c
    +. (dt *. (p.r0 /. (p.r0 +. r)) *. exp (-.r /. p.decay_length))

let neighbour_temperature p ~pitch = temperature_at p pitch

let damage_probability m p ~r =
  let temp_c = temperature_at p r in
  Anisotropy.mixing_fraction m ~temp_c ~duration:p.pulse

let neighbour_damage_probability m p ~pitch = damage_probability m p ~r:pitch

let target_destroyed m p = damage_probability m p ~r:0. > 0.999

let pulse_energy p =
  (* Conductance of a hemispherical contact of radius r0 into a substrate
     of conductivity ~1 W/mK (glass): G = 2 pi k r0. *)
  let conductivity = 1.0 in
  let g = 2. *. Float.pi *. conductivity *. p.r0 in
  let dt = p.peak_temp_c -. p.ambient_c in
  g *. dt *. p.pulse
