(** Physical constants and the Co/Pt multilayer material description.

    The systems layers never hard-code material numbers; everything is
    drawn from a {!material} record so that the paper's own future-work
    item — "develop materials that change magnetic properties by
    interface mixing at lower temperatures" (Section 9) — is a parameter
    sweep, not a code change. *)

val boltzmann : float
(** k_B in J/K. *)

val mu0 : float
(** Vacuum permeability in T·m/A. *)

val cu_k_alpha : float
(** Cu Kα X-ray wavelength in metres (0.15406 nm) — the standard
    laboratory diffractometer source assumed for Figures 8 and 9. *)

val celsius_to_kelvin : float -> float
val kelvin_to_celsius : float -> float

type material = {
  label : string;
  k_interface : float;
      (** As-grown effective perpendicular anisotropy, J/m³.  The paper
          measures 80 kJ/m³ for its Co/Pt stack (Section 7). *)
  ms : float;  (** Saturation magnetisation, A/m. *)
  bilayer_period : float;
      (** Co+Pt bilayer period, m.  The paper's low-angle XRD peak near
          8° corresponds to ≈1.1 nm (each layer ≈0.6 nm). *)
  n_bilayers : int;  (** "tens of layers" — number of repeats. *)
  mix_activation_energy : float;
      (** Arrhenius activation energy of interface mixing, J. *)
  mix_attempt_rate : float;  (** Arrhenius prefactor, 1/s. *)
  cryst_activation_energy : float;
      (** Activation energy of fct CoPt crystallite growth, J. *)
  cryst_attempt_rate : float;  (** Prefactor for crystallisation, 1/s. *)
  anneal_duration : float;
      (** Reference anneal time used for the Figure 7 protocol, s. *)
}

val co_pt : material
(** The paper's Co/Pt stack, calibrated so that the Figure 7 anchor
    points hold: K ≈ 80 kJ/m³ maintained up to 500 °C annealing and a
    dramatic drop above 600 °C. *)

val co_pt_low_temp : material
(** A hypothetical engineered stack that mixes around 300 °C — the
    Section 9 future-work material (cf. the Co/Pt mixing observed at
    300 °C by Spoerl and Weller, Section 2 "Materials aspects").  Used
    by the neighbour-damage ablation (E13). *)

type dot_geometry = {
  diameter : float;  (** Dot diameter, m. *)
  thickness : float;  (** Total stack thickness, m. *)
  pitch : float;  (** Centre-to-centre dot spacing, m. *)
}

val dot_200nm : dot_geometry
(** The demonstrated 200 nm-pitch medium (Figure 5 left). *)

val dot_150nm : dot_geometry
(** The "recently realised" 150 nm-pitch medium (Section 6). *)

val dot_100nm : dot_geometry
(** The projected 100 nm pitch (50 nm dots, 50 nm spacing) giving
    10 Gbit/cm². *)

val dot_volume : dot_geometry -> float
(** Magnetic volume of one dot, m³ (cylinder). *)

val areal_density_bits_per_cm2 : dot_geometry -> float
(** One bit per dot: 1/pitch² scaled to cm². *)
