let boltzmann = 1.380649e-23
let mu0 = 1.25663706212e-6
let cu_k_alpha = 0.15406e-9
let celsius_to_kelvin c = c +. 273.15
let kelvin_to_celsius k = k -. 273.15

type material = {
  label : string;
  k_interface : float;
  ms : float;
  bilayer_period : float;
  n_bilayers : int;
  mix_activation_energy : float;
  mix_attempt_rate : float;
  cryst_activation_energy : float;
  cryst_attempt_rate : float;
  anneal_duration : float;
}

let ev = 1.602176634e-19

(* Calibration of the mixing kinetics (see DESIGN.md, E3).  The attempt
   rate is pinned at the atomic attempt frequency 1e13/s; the activation
   energy then follows from the Figure 7 anchors: for Ea = 2.95 eV the
   mixed fraction after the one-hour reference anneal is ~0.2% at 500 C
   (plateau), ~30% at 600 C (knee) and >99.9% at 700 C (collapse).  The
   same kinetics evaluated at pulse timescales make a 100 us write pulse
   need ~1550 C at the dot centre — consistent with the paper's remark
   that tip currents can even evaporate the material (Section 7). *)
let co_pt =
  {
    label = "Co/Pt multilayer (paper, Fig. 7)";
    k_interface = 80e3;
    ms = 400e3;
    bilayer_period = 1.1e-9;
    n_bilayers = 20;
    mix_activation_energy = 2.95 *. ev;
    mix_attempt_rate = 1e13;
    cryst_activation_energy = 3.2 *. ev;
    cryst_attempt_rate = 1e13;
    anneal_duration = 3600.;
  }

(* Same kinetics shifted so that the knee sits near 300 C: the
   lower-temperature material the paper's Section 9 wants developed
   (cf. Co/Pt interface mixing observed at 300 C by Spoerl & Weller). *)
let co_pt_low_temp =
  {
    co_pt with
    label = "engineered low-temperature stack";
    mix_activation_energy = 1.93 *. ev;
    cryst_activation_energy = 2.25 *. ev;
  }

type dot_geometry = { diameter : float; thickness : float; pitch : float }

let dot_200nm = { diameter = 100e-9; thickness = 22e-9; pitch = 200e-9 }
let dot_150nm = { diameter = 75e-9; thickness = 22e-9; pitch = 150e-9 }
let dot_100nm = { diameter = 50e-9; thickness = 22e-9; pitch = 100e-9 }

let dot_volume g =
  let r = g.diameter /. 2. in
  Float.pi *. r *. r *. g.thickness

let areal_density_bits_per_cm2 g =
  let bits_per_m2 = 1. /. (g.pitch *. g.pitch) in
  bits_per_m2 /. 1e4
