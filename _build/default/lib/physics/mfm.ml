type dot_signal = Up | Down | Destroyed

type channel = {
  flying_height : float;
  noise_sigma : float;
  residual : float;
}

let default_channel =
  { flying_height = 30e-9; noise_sigma = 0.05; residual = 0.03 }

let peak_width c (g : Constants.dot_geometry) =
  (* The stray-field spot blurs with distance from the medium. *)
  (g.diameter /. 2.) +. c.flying_height

let amplitude c = function
  | Up -> 1.
  | Down -> -1.
  | Destroyed -> c.residual

let signal_at c (g : Constants.dot_geometry) ~dots x =
  let w = peak_width c g in
  let n = Array.length dots in
  let acc = ref 0. in
  (* Only nearby dots contribute measurably. *)
  let i0 = max 0 (int_of_float (x /. g.pitch) - 3)
  and i1 = min (n - 1) (int_of_float (x /. g.pitch) + 3) in
  for i = i0 to i1 do
    let xi = float_of_int i *. g.pitch in
    let d = (x -. xi) /. w in
    acc := !acc +. (amplitude c dots.(i) *. exp (-0.5 *. d *. d))
  done;
  !acc

let trace c (g : Constants.dot_geometry) ~rng ~dots ~samples_per_dot =
  let n = Array.length dots in
  let total = n * samples_per_dot in
  Array.init total (fun k ->
      let x = float_of_int k /. float_of_int samples_per_dot *. g.pitch in
      let noise = Sim.Prng.gaussian rng ~mu:0. ~sigma:c.noise_sigma in
      (x, signal_at c g ~dots x +. noise))

let read_dot c (g : Constants.dot_geometry) ~rng ~dots i =
  let x = float_of_int i *. g.pitch in
  signal_at c g ~dots x +. Sim.Prng.gaussian rng ~mu:0. ~sigma:c.noise_sigma

let detect c g ~rng ~dots i =
  let s = read_dot c g ~rng ~dots i in
  if s >= 0. then Up else Down

let ber c g ~rng ~trials =
  let errors = ref 0 in
  for _ = 1 to trials do
    let dots =
      Array.init 9 (fun _ -> if Sim.Prng.bool rng then Up else Down)
    in
    let i = 4 in
    let decided = detect c g ~rng ~dots i in
    let expected = dots.(i) in
    let wrong =
      match (decided, expected) with
      | Up, Up | Down, Down -> false
      | Up, Down | Down, Up -> true
      | _, Destroyed | Destroyed, _ -> false
    in
    if wrong then incr errors
  done;
  float_of_int !errors /. float_of_int trials
