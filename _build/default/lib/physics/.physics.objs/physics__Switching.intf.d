lib/physics/switching.mli: Constants
