lib/physics/xrd.mli: Constants
