lib/physics/mfm.mli: Constants Sim
