lib/physics/thermal.mli: Constants
