lib/physics/switching.ml: Constants Float
