lib/physics/xrd.ml: Anisotropy Array Constants Float List
