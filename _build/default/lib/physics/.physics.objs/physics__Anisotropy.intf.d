lib/physics/anisotropy.mli: Constants Format
