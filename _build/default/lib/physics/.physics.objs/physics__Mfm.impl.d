lib/physics/mfm.ml: Array Constants Sim
