lib/physics/anisotropy.ml: Constants Format List
