lib/physics/constants.mli:
