lib/physics/thermal.ml: Anisotropy Constants Float
