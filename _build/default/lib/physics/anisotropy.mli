(** Interface anisotropy under annealing — the model behind Figure 7.

    The perpendicular anisotropy of the Co/Pt stack comes from the
    Co–Pt interfaces; annealing mixes the interfaces (irreversibly) and
    the anisotropy collapses.  Mixing is modelled as a first-order
    thermally activated process with Arrhenius kinetics:

    {v m(T, t) = 1 - exp(-nu * exp(-Ea / kB T) * t) v}

    so the effective anisotropy after an anneal is
    [K(T) = K0 * (1 - m(T, t))].  At still higher temperatures fct CoPt
    crystallites form; they have {e tilted} easy axes (the paper's
    Figure 9 discussion), never restoring the perpendicular axis. *)

type axis = Perpendicular | In_plane | Tilted

val equal_axis : axis -> axis -> bool
val pp_axis : Format.formatter -> axis -> unit

val mixing_fraction :
  Constants.material -> temp_c:float -> duration:float -> float
(** Mixed interface fraction in [0,1] after [duration] seconds at
    [temp_c] °C. *)

val crystallised_fraction :
  Constants.material -> temp_c:float -> duration:float -> float
(** Fraction of the film transformed to fct CoPt crystallites. *)

val k_after_anneal : Constants.material -> temp_c:float -> float
(** Effective perpendicular anisotropy (J/m³) after the material's
    reference anneal protocol at [temp_c] — the Figure 7 ordinate. *)

val k_as_grown : Constants.material -> float
(** [k_after_anneal] of an unannealed film = [k_interface]. *)

val easy_axis_after_anneal : Constants.material -> temp_c:float -> axis
(** Easy-axis orientation after annealing: perpendicular while more than
    half the interface anisotropy survives; tilted when destroyed dots
    have crystallised to fct CoPt; in-plane otherwise (shape anisotropy
    of a flat dot wins). *)

val destruction_threshold_c : Constants.material -> float
(** Lowest annealing temperature (°C, to 1°) at which the reference
    anneal leaves less than half of the as-grown anisotropy — the
    minimum heating temperature the electrical write operation must
    reach.  For the paper's stack this is just above 600 °C
    ("heating temperatures over 500 °C will be required", Section 7). *)

val figure7_sweep :
  Constants.material -> temps_c:float list -> (float * float) list
(** [(temperature °C, K in kJ/m³)] series — the Figure 7 curve. *)
