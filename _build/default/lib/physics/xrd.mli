(** Kinematic X-ray diffraction simulator for the multilayer stack —
    regenerates Figures 8 (low angle) and 9 (high angle).

    Low angle: the Co/Pt bilayer period Λ ≈ 1.1 nm produces a
    superlattice Bragg peak at [2θ = 2 asin(λ_x / 2Λ)] ≈ 8°, riding on
    the steep Fresnel reflectivity background.  Annealing mixes the
    interfaces; the peak amplitude scales with the square of the
    surviving interface contrast [(1 - m)²] and vanishes after a 700 °C
    anneal — exactly the Figure 8 observation.

    High angle: the as-grown film shows only a broad, weak average
    (111) reflection; annealing grows fct CoPt crystallites whose (111)
    planes reflect sharply at 2θ ≈ 41.7° (Figure 9), with intensity
    proportional to the crystallised fraction and width shrinking with
    grain size (Scherrer). *)

type point = { two_theta : float;  (** degrees *) intensity : float }
(** One sample of a diffractogram; intensities are arbitrary units on a
    common scale within one scan. *)

type scan = point list

val superlattice_peak_deg : Constants.material -> float
(** First-order superlattice peak position (2θ, degrees). *)

val copt_111_peak_deg : float
(** 41.7° — the fct CoPt (111) reflection the paper identifies. *)

val low_angle_scan :
  Constants.material -> anneal_temp_c:float option -> scan
(** 2θ from 2° to 14° in 0.05° steps.  [anneal_temp_c = None] means the
    as-grown film. *)

val high_angle_scan :
  Constants.material -> anneal_temp_c:float option -> scan
(** 2θ from 35° to 50° in 0.05° steps. *)

val peak_amplitude : scan -> near_deg:float -> window:float -> float
(** Height above the local background of the largest sample within
    [near_deg ± window] — used by tests to assert peak presence or
    absence. *)

val bilayer_period_from_peak : peak_deg:float -> float
(** Inverse Bragg relation: the layer spacing (m) implied by a low-angle
    peak position — the paper derives 0.6 nm per layer from its 8° peak. *)
