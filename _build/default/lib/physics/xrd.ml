type point = { two_theta : float; intensity : float }
type scan = point list

let deg_of_rad r = r *. 180. /. Float.pi
let rad_of_deg d = d *. Float.pi /. 180.

let superlattice_peak_deg (m : Constants.material) =
  2. *. deg_of_rad (asin (Constants.cu_k_alpha /. (2. *. m.bilayer_period)))

let copt_111_peak_deg = 41.7

let bilayer_period_from_peak ~peak_deg =
  Constants.cu_k_alpha /. (2. *. sin (rad_of_deg (peak_deg /. 2.)))

let mixing m anneal_temp_c =
  match anneal_temp_c with
  | None -> 0.
  | Some t -> Anisotropy.mixing_fraction m ~temp_c:t ~duration:m.anneal_duration

let crystallisation m anneal_temp_c =
  match anneal_temp_c with
  | None -> 0.
  | Some t ->
      Anisotropy.crystallised_fraction m ~temp_c:t ~duration:m.anneal_duration

let gaussian_peak ~centre ~width ~height x =
  let d = (x -. centre) /. width in
  height *. exp (-0.5 *. d *. d)

let sample_range ~lo ~hi ~step f =
  let n = int_of_float (Float.round ((hi -. lo) /. step)) in
  List.init (n + 1) (fun i ->
      let x = lo +. (float_of_int i *. step) in
      { two_theta = x; intensity = f x })

let low_angle_scan (m : Constants.material) ~anneal_temp_c =
  let mix = mixing m anneal_temp_c in
  let peak_pos = superlattice_peak_deg m in
  (* Peak width from the finite number of bilayers (Scherrer-like):
     fewer repeats -> wider peak.  20 bilayers give ~0.4 deg. *)
  let width = 8. /. float_of_int m.n_bilayers in
  let contrast = (1. -. mix) ** 2. in
  let critical = 0.6 (* total-reflection edge, degrees 2-theta *) in
  let background x =
    (* Fresnel decay ~ theta^-4 beyond the critical angle, floored by
       diffuse scattering. *)
    let t = Float.max x critical in
    (1e4 *. ((critical /. t) ** 4.)) +. 2.
  in
  sample_range ~lo:2. ~hi:14. ~step:0.05 (fun x ->
      background x
      +. gaussian_peak ~centre:peak_pos ~width ~height:(400. *. contrast) x)

let high_angle_scan (m : Constants.material) ~anneal_temp_c =
  let cryst = crystallisation m anneal_temp_c in
  let background _ = 20. in
  (* As-grown: broad weak average multilayer (111) reflection around
     40.5 deg (between Co 44.2 and Pt 39.8).  Annealed: sharp CoPt(111)
     at 41.7 deg; grains grow with the crystallised fraction. *)
  let broad_height = 30. *. (1. -. cryst) in
  let sharp_width = 1.2 -. (0.9 *. cryst) in
  sample_range ~lo:35. ~hi:50. ~step:0.05 (fun x ->
      background x
      +. gaussian_peak ~centre:40.5 ~width:2.5 ~height:broad_height x
      +. gaussian_peak ~centre:copt_111_peak_deg ~width:sharp_width
           ~height:(900. *. cryst) x)

let peak_amplitude scan ~near_deg ~window =
  let in_window p = Float.abs (p.two_theta -. near_deg) <= window in
  let inside = List.filter in_window scan in
  match inside with
  | [] -> 0.
  | _ ->
      let max_in =
        List.fold_left (fun acc p -> Float.max acc p.intensity) 0. inside
      in
      (* Local background: median of the samples just outside the window
         (within 3x the window). *)
      let ring =
        List.filter
          (fun p ->
            (not (in_window p))
            && Float.abs (p.two_theta -. near_deg) <= 3. *. window)
          scan
      in
      let bg =
        match ring with
        | [] -> 0.
        | _ ->
            let a = Array.of_list (List.map (fun p -> p.intensity) ring) in
            Array.sort compare a;
            a.(Array.length a / 2)
      in
      Float.max 0. (max_in -. bg)
