(** Stoner–Wohlfarth single-domain switching — governs whether the
    combined tip + external coil field (Section 6, Figure 6) can write a
    dot, and whether stored bits survive thermally (retention).

    A single-domain dot with uniaxial anisotropy [K] switches when the
    applied field exceeds the astroid threshold

    {v H_sw(psi) = H_K / (cos^{2/3} psi + sin^{2/3} psi)^{3/2} v}

    with [H_K = 2 K / (mu0 Ms)] and [psi] the angle between the field
    and the easy axis.  A heated dot has lost its perpendicular [K], so
    a perpendicular write field addresses only the (vanished) in-plane
    projection — the write no longer stores a perpendicular bit. *)

val anisotropy_field : Constants.material -> k:float -> float
(** [H_K = 2 k / (mu0 Ms)] in A/m, for the (possibly degraded)
    anisotropy value [k]. *)

val switching_field : Constants.material -> k:float -> psi:float -> float
(** Astroid switching threshold at field angle [psi] (radians from the
    easy axis), A/m. *)

val write_succeeds :
  Constants.material -> k:float -> field:float -> psi:float -> bool
(** Does an applied field of magnitude [field] at angle [psi] switch the
    dot? *)

val min_write_field : Constants.material -> float
(** Smallest field that writes a healthy dot when applied at the optimal
    45° astroid angle: [H_K / 2]. *)

val stability_factor :
  Constants.material -> Constants.dot_geometry -> k:float -> temp_c:float -> float
(** Thermal stability ratio [K V / k_B T]; > 40 means a bit retains for
    years.  The paper's medium at 80 kJ/m³ and 100 nm dots is very
    comfortably stable. *)

val retains : Constants.material -> Constants.dot_geometry -> k:float -> temp_c:float -> bool
(** [stability_factor > 40]. *)
