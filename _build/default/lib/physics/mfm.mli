(** Magnetic force microscopy read-back model — the signal of Figure 1.

    The MFM tip senses the perpendicular stray field of each dot: an
    up-magnetised dot gives a positive peak, a down-magnetised dot a
    negative peak, and a heated (destroyed) dot — whose easy axis has
    rotated in-plane — gives essentially no perpendicular signal (the
    vanished third peak in the lower half of Figure 1).

    The per-dot response is modelled as a Gaussian of width set by the
    tip flying height, plus additive Gaussian sensor noise.  The read
    channel thresholds the peak sample at each dot position. *)

type dot_signal =
  | Up  (** +1 peak *)
  | Down  (** −1 peak *)
  | Destroyed  (** in-plane or tilted axis: residual ~0 *)

type channel = {
  flying_height : float;  (** Tip–medium distance, m (paper: 30 nm). *)
  noise_sigma : float;  (** Sensor noise as a fraction of peak height. *)
  residual : float;
      (** Residual perpendicular component of a destroyed dot (tilted
          axes leave a little), as a fraction of peak height. *)
}

val default_channel : channel
(** 30 nm flying height, 5% noise, 3% destroyed-dot residual. *)

val peak_width : channel -> Constants.dot_geometry -> float
(** Lateral half-width of one dot's response, m — grows with flying
    height, so low flying and coarse pitch keep dots resolvable. *)

val trace :
  channel ->
  Constants.dot_geometry ->
  rng:Sim.Prng.t ->
  dots:dot_signal array ->
  samples_per_dot:int ->
  (float * float) array
(** [(position_m, signal)] samples of a scan across the dot row —
    the Figure 1 read-back picture. *)

val read_dot :
  channel ->
  Constants.dot_geometry ->
  rng:Sim.Prng.t ->
  dots:dot_signal array ->
  int ->
  float
(** Signal sampled exactly over dot [i], including the (attenuated)
    shoulders of its neighbours and noise. *)

val detect :
  channel ->
  Constants.dot_geometry ->
  rng:Sim.Prng.t ->
  dots:dot_signal array ->
  int ->
  dot_signal
(** Threshold decision for dot [i].  Note that a [Destroyed] dot decides
    to [Up] or [Down] on noise — "applying a single mrb operation to an
    electrically written bit would yield a more or less random result"
    (Section 3); detection of heating needs the erb protocol instead. *)

val ber :
  channel ->
  Constants.dot_geometry ->
  rng:Sim.Prng.t ->
  trials:int ->
  float
(** Monte-Carlo raw bit error rate of the channel over random data —
    feeds the medium-level read-error probability. *)
