let anisotropy_field (m : Constants.material) ~k =
  2. *. k /. (Constants.mu0 *. m.ms)

let switching_field m ~k ~psi =
  let hk = anisotropy_field m ~k in
  let psi = Float.abs psi in
  let c = Float.abs (cos psi) ** (2. /. 3.)
  and s = Float.abs (sin psi) ** (2. /. 3.) in
  hk /. ((c +. s) ** 1.5)

let write_succeeds m ~k ~field ~psi =
  if k <= 0. then false else field > switching_field m ~k ~psi

let min_write_field m =
  switching_field m ~k:m.k_interface ~psi:(Float.pi /. 4.)

let stability_factor m g ~k ~temp_c =
  ignore m;
  let v = Constants.dot_volume g in
  let t = Constants.celsius_to_kelvin temp_c in
  k *. v /. (Constants.boltzmann *. t)

let retains m g ~k ~temp_c = stability_factor m g ~k ~temp_c > 40.
