lib/sero/tamper.mli: Format
