lib/sero/tamper.ml: Format List
