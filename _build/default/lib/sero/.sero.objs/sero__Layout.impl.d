lib/sero/layout.ml: Codec List
