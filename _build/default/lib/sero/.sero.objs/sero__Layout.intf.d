lib/sero/layout.mli:
