lib/sero/image.ml: Bytes Char Codec Device Fun Int32 Physics Pmedia Probe String
