lib/sero/device.mli: Codec Format Hash Layout Physics Probe Tamper
