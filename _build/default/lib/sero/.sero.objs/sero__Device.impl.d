lib/sero/device.ml: Array Char Codec Format Hash Layout List Physics Pmedia Probe String Tamper
