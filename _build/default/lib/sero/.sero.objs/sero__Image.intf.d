lib/sero/image.mli: Device
