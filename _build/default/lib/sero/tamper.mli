(** Tamper-evidence verdicts produced by the verify and scan operations. *)

type evidence =
  | Hash_mismatch
      (** The recomputed hash of the line's data blocks differs from the
          burned hash — data or addresses were altered after heating. *)
  | Invalid_cells of int
      (** [HH] cells in the write-once area: someone heated dots of an
          already-burned hash (Section 5.1, "ewb hash"). *)
  | Partially_burned
      (** The write-once area mixes valid and blank cells: a heat
          operation was interrupted or the area was selectively burned. *)
  | Data_unreadable of int list
      (** Data blocks whose sector frames no longer decode (e.g. an
          electrical write into the data area destroyed dots —
          Section 5.1, "ewb inode/data" appears as a read error). *)
  | Address_mismatch of int list
      (** Frames decode but carry a different PBA than where they were
          found — a copied/relocated block (Section 5.2: "a copy can
          always be distinguished from an original"). *)
  | Meta_corrupt
      (** The burned area decodes cleanly but its metadata does not
          parse — it was not produced by a legitimate heat operation. *)

type verdict =
  | Intact  (** Burned hash present, clean, and matching. *)
  | Not_heated  (** Write-once area fully blank: an ordinary WMRM line. *)
  | Tampered of evidence list  (** Non-empty list of findings. *)

val equal_verdict : verdict -> verdict -> bool
val pp_evidence : Format.formatter -> evidence -> unit
val pp_verdict : Format.formatter -> verdict -> unit
val is_tampered : verdict -> bool
