type evidence =
  | Hash_mismatch
  | Invalid_cells of int
  | Partially_burned
  | Data_unreadable of int list
  | Address_mismatch of int list
  | Meta_corrupt

type verdict = Intact | Not_heated | Tampered of evidence list

let equal_evidence a b =
  match (a, b) with
  | Hash_mismatch, Hash_mismatch -> true
  | Invalid_cells x, Invalid_cells y -> x = y
  | Partially_burned, Partially_burned -> true
  | Data_unreadable x, Data_unreadable y -> x = y
  | Address_mismatch x, Address_mismatch y -> x = y
  | Meta_corrupt, Meta_corrupt -> true
  | ( ( Hash_mismatch | Invalid_cells _ | Partially_burned
      | Data_unreadable _ | Address_mismatch _ | Meta_corrupt ),
      _ ) ->
      false

let equal_verdict a b =
  match (a, b) with
  | Intact, Intact | Not_heated, Not_heated -> true
  | Tampered x, Tampered y ->
      List.length x = List.length y && List.for_all2 equal_evidence x y
  | (Intact | Not_heated | Tampered _), _ -> false

let pp_evidence ppf = function
  | Hash_mismatch -> Format.pp_print_string ppf "hash mismatch"
  | Invalid_cells n -> Format.fprintf ppf "%d invalid (HH) cells" n
  | Partially_burned -> Format.pp_print_string ppf "partially burned hash area"
  | Data_unreadable pbas ->
      Format.fprintf ppf "unreadable data blocks %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        pbas
  | Meta_corrupt -> Format.pp_print_string ppf "metadata does not parse"
  | Address_mismatch pbas ->
      Format.fprintf ppf "relocated blocks found at %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
           Format.pp_print_int)
        pbas

let pp_verdict ppf = function
  | Intact -> Format.pp_print_string ppf "intact"
  | Not_heated -> Format.pp_print_string ppf "not heated"
  | Tampered evs ->
      Format.fprintf ppf "TAMPERED (%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           pp_evidence)
        evs

let is_tampered = function Tampered _ -> true | Intact | Not_heated -> false
