(** Device-image persistence for the command-line tools: serialises the
    full physical state of a simulated device (every dot, defect map,
    frame generations) to a file, so that $(b,serotool) invocations
    compose like operations on a real disk.

    The PRNG position and the time/energy ledger are not preserved —
    a reloaded device is "powered on" fresh; its medium is bit-exact. *)

val save : Device.t -> string -> unit
(** [save dev path]. @raise Sys_error on IO failure. *)

val load : string -> (Device.t, string) result
(** Recreate a device from [path]; the configuration (block count, line
    size, tips, material, costs) is restored from the image header. *)
