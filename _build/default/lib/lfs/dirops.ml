let root_ino = 1

let is_dir (i : Enc.inode) = Enc.equal_kind i.Enc.kind Enc.Directory

let check_dir st ino =
  let i = State.load_inode st ino in
  if not (is_dir i) then
    raise (State.Fs_error (Printf.sprintf "inode %d is not a directory" ino));
  i

(* Entries are stored one decodable list per block, never spanning. *)
let entries st ino =
  let inode = check_dir st ino in
  let n_blocks = File.block_count inode in
  List.concat
    (List.init n_blocks (fun bi ->
         let payload =
           File.read st ino ~offset:(bi * File.block_size) ~len:File.block_size
         in
         match Enc.decode_dirents payload with
         | Some es -> es
         | None ->
             raise
               (State.Fs_error
                  (Printf.sprintf "directory %d block %d corrupt" ino bi))))

(* Rewrite the whole directory: pack entries greedily into blocks. *)
let store st ino (es : Enc.dirent list) =
  let blocks = ref [] and current = ref [] in
  let flush_current () =
    if !current <> [] || !blocks = [] then begin
      blocks := Enc.encode_dirents (List.rev !current) :: !blocks;
      current := []
    end
  in
  List.iter
    (fun e ->
      if Enc.dirent_fits (List.rev (e :: !current)) then current := e :: !current
      else begin
        flush_current ();
        if not (Enc.dirent_fits [ e ]) then
          raise (State.Fs_error "directory entry name too long");
        current := [ e ]
      end)
    es;
  flush_current ();
  let blocks = List.rev !blocks in
  List.iteri
    (fun bi payload ->
      (* Pad so each directory block is a full, framed block. *)
      let padded =
        payload ^ String.make (File.block_size - String.length payload) '\x00'
      in
      File.write st ino ~offset:(bi * File.block_size) padded)
    blocks;
  File.truncate st ino ~size:(List.length blocks * File.block_size)

let store_empty st ino = store st ino []

let init_root st =
  let inode = File.create_inode st ~kind:Enc.Directory ~heat_group:0 in
  if inode.Enc.ino <> root_ino then
    raise (State.Fs_error "root must be the first inode");
  store st root_ino []

let find_entry es name =
  List.find_opt (fun (e : Enc.dirent) -> String.equal e.Enc.name name) es

let add_entry st ~dir e =
  let es = entries st dir in
  (match find_entry es e.Enc.name with
  | Some _ ->
      raise
        (State.Fs_error (Printf.sprintf "entry %S already exists" e.Enc.name))
  | None -> ());
  store st dir (es @ [ e ])

let remove_entry st ~dir name =
  let es = entries st dir in
  match find_entry es name with
  | None -> raise (State.Fs_error (Printf.sprintf "no entry %S" name))
  | Some _ ->
      store st dir
        (List.filter (fun (e : Enc.dirent) -> not (String.equal e.Enc.name name)) es)

let split_path path =
  if String.length path = 0 || path.[0] <> '/' then
    Error "path must be absolute"
  else begin
    let parts =
      String.split_on_char '/' path |> List.filter (fun s -> s <> "")
    in
    if List.exists (fun p -> String.equal p "." || String.equal p "..") parts
    then Error "paths may not contain . or .."
    else Ok parts
  end

(* A directory that no longer parses (e.g. scrubbed by an attacker)
   simply fails the resolution — the forensic scan, not the namespace,
   is the recovery path. *)
let entries_opt st ino =
  match entries st ino with
  | es -> Some es
  | exception State.Fs_error _ -> None

let lookup st path =
  match split_path path with
  | Error _ -> None
  | Ok parts ->
      let rec walk ino kind = function
        | [] -> Some (ino, kind)
        | name :: rest -> (
            if not (Enc.equal_kind kind Enc.Directory) then None
            else
              match Option.bind (entries_opt st ino) (fun es -> find_entry es name) with
              | None -> None
              | Some e -> walk e.Enc.entry_ino e.Enc.entry_kind rest)
      in
      walk root_ino Enc.Directory parts

let parent_of st path =
  match split_path path with
  | Error e -> Error e
  | Ok [] -> Error "the root has no parent"
  | Ok parts -> (
      let rec split_last acc = function
        | [ last ] -> (List.rev acc, last)
        | x :: rest -> split_last (x :: acc) rest
        | [] -> assert false
      in
      let dir_parts, base = split_last [] parts in
      let rec walk ino = function
        | [] -> Ok (ino, base)
        | name :: rest -> (
            match
              Option.bind (entries_opt st ino) (fun es -> find_entry es name)
            with
            | Some e when Enc.equal_kind e.Enc.entry_kind Enc.Directory ->
                walk e.Enc.entry_ino rest
            | Some _ -> Error (Printf.sprintf "%S is not a directory" name)
            | None -> Error (Printf.sprintf "no such directory %S" name))
      in
      walk root_ino dir_parts)
