(** The segment cleaner (garbage collector).

    Classic Sprite-LFS cost-benefit cleaning with the paper's one
    crucial amendment (Section 4.1): segments containing heated lines
    are {e never} selected — "the garbage collector skips over heated
    segments, avoiding reading and writing them repeatedly", and copying
    a heated line would not free reusable space anyway.

    Liveness is decided against the imap and the in-memory pointer
    caches; live blocks are rewritten at their owner's group log head,
    so under the clustering policy cleaning also {e re-segregates} heat
    groups that historical workloads interleaved. *)

val is_live : State.t -> pba:int -> Enc.owner -> bool
(** Ground-truth liveness of a block given its summary owner record. *)

val segment_utilisation : State.t -> int -> float
(** live / usable for one segment. *)

val select_victim : State.t -> int option
(** Best cost-benefit candidate: maximises [(1-u)·age/(1+u)] over
    closed, unheated, non-checkpoint segments (empty segments win
    immediately). [None] if nothing is cleanable. *)

val clean_segment : State.t -> int -> int
(** Clean one segment: copy out live blocks, flush affected inodes,
    release the segment.  Returns the number of blocks copied. *)

val maybe_clean : State.t -> unit
(** Enforce the policy watermarks: when free segments fall below
    [cleaner_low], clean victims until [cleaner_high] (or nothing is
    cleanable). *)
