lib/lfs/enc.ml: Array Codec Format Int32 List String
