lib/lfs/heat.ml: Array Cleaner Codec Enc File Format Hashtbl List Sero State String
