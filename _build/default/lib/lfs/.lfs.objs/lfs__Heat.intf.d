lib/lfs/heat.mli: Sero State
