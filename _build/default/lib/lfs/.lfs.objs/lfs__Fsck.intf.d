lib/lfs/fsck.mli: Enc Format Hash Sero
