lib/lfs/cleaner.ml: Array Enc File Hashtbl Option Printf State Sys
