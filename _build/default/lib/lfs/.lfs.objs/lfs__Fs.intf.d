lib/lfs/fs.mli: Enc Format Heat Sero State
