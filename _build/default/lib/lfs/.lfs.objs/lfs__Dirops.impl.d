lib/lfs/dirops.ml: Enc File List Option Printf State String
