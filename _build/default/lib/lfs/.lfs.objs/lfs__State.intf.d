lib/lfs/state.mli: Enc Hashtbl Sero
