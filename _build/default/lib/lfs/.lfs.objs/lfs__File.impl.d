lib/lfs/file.ml: Array Bytes Codec Enc Hashtbl List Sero State String
