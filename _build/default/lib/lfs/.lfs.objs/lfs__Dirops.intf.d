lib/lfs/dirops.mli: Enc State
