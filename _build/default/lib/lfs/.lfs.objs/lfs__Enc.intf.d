lib/lfs/enc.mli: Format
