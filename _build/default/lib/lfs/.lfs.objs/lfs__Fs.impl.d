lib/lfs/fs.ml: Array Cleaner Dirops Enc File Format Heat List Option Printf Result Sero State
