lib/lfs/state.ml: Array Buffer Codec Enc Format Hashtbl List Printf Probe Sero String
