lib/lfs/cleaner.mli: Enc State
