lib/lfs/file.mli: Enc State
