lib/lfs/fsck.ml: Array Buffer Codec Enc Format Hash Hashtbl List Option Sero String
