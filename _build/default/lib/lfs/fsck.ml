type recovered = {
  r_ino : int;
  r_kind : Enc.kind;
  r_size : int;
  r_heat_group : int;
  r_complete : bool;
  r_content_sha256 : Hash.Sha256.t option;
}

type report = {
  lines_scanned : int;
  heated_intact : int;
  heated_tampered : (int * Sero.Tamper.verdict) list;
  recovered_files : recovered list;
}

let block_payload dev pba =
  match Sero.Device.read_block dev ~pba with Ok p -> Some p | Error _ -> None

(* Resolve an inode found on the raw medium into file bytes, without any
   in-memory FS state. *)
let resolve_file dev (inode : Enc.inode) =
  let n = (inode.Enc.size + Codec.Sector.payload_bytes - 1) / Codec.Sector.payload_bytes in
  let per_ind = Enc.pointers_per_indirect in
  let read_ind pba =
    if pba = 0 then Some (Array.make per_ind 0)
    else Option.bind (block_payload dev pba) Enc.decode_pointer_block
  in
  let ptrs = Array.make (max n 0) 0 in
  let ok = ref true in
  Array.blit inode.Enc.direct 0 ptrs 0 (min n Enc.n_direct);
  if n > Enc.n_direct then begin
    match read_ind inode.Enc.single_ind with
    | Some a -> Array.blit a 0 ptrs Enc.n_direct (min (n - Enc.n_direct) per_ind)
    | None -> ok := false
  end;
  if n > Enc.n_direct + per_ind then begin
    match read_ind inode.Enc.double_ind with
    | None -> ok := false
    | Some root ->
        let remaining = n - Enc.n_direct - per_ind in
        let n_children = (remaining + per_ind - 1) / per_ind in
        for c = 0 to n_children - 1 do
          match read_ind root.(c) with
          | None -> ok := false
          | Some child ->
              let base = Enc.n_direct + per_ind + (c * per_ind) in
              Array.blit child 0 ptrs base (min (n - base) per_ind)
        done
  end;
  if not !ok then None
  else begin
    let buf = Buffer.create inode.Enc.size in
    let complete = ref true in
    (try
       Array.iter
         (fun pba ->
           if pba = 0 then
             Buffer.add_string buf (String.make Codec.Sector.payload_bytes '\x00')
           else
             match block_payload dev pba with
             | Some p -> Buffer.add_string buf p
             | None ->
                 complete := false;
                 raise Exit)
         ptrs
     with Exit -> ());
    if not !complete then None
    else Some (String.sub (Buffer.contents buf) 0 inode.Enc.size)
  end

let run dev =
  let lay = Sero.Device.layout dev in
  let entries = Sero.Device.scan ~deep:true dev in
  let heated_intact = ref 0 and tampered = ref [] in
  let inodes = Hashtbl.create 16 in
  List.iter
    (fun (e : Sero.Device.scan_entry) ->
      match e.Sero.Device.verdict with
      | Sero.Tamper.Not_heated -> ()
      | Sero.Tamper.Tampered _ as v ->
          tampered := (e.Sero.Device.scanned_line, v) :: !tampered
      | Sero.Tamper.Intact ->
          incr heated_intact;
          (* Hunt for inode frames among the line's data blocks. *)
          List.iter
            (fun pba ->
              match block_payload dev pba with
              | None -> ()
              | Some payload -> (
                  match Enc.decode_inode payload with
                  | Some inode ->
                      (* Prefer the highest generation if duplicates
                         survive from older heats. *)
                      let keep =
                        match Hashtbl.find_opt inodes inode.Enc.ino with
                        | Some (old : Enc.inode) ->
                            inode.Enc.generation > old.Enc.generation
                        | None -> true
                      in
                      if keep then Hashtbl.replace inodes inode.Enc.ino inode
                  | None -> ()))
            (Sero.Layout.data_blocks_of_line lay e.Sero.Device.scanned_line))
    entries;
  let recovered_files =
    Hashtbl.fold
      (fun _ (inode : Enc.inode) acc ->
        let content = resolve_file dev inode in
        {
          r_ino = inode.Enc.ino;
          r_kind = inode.Enc.kind;
          r_size = inode.Enc.size;
          r_heat_group = inode.Enc.heat_group;
          r_complete = Option.is_some content;
          r_content_sha256 = Option.map Hash.Sha256.digest_string content;
        }
        :: acc)
      inodes []
    |> List.sort (fun a b -> compare a.r_ino b.r_ino)
  in
  {
    lines_scanned = List.length entries;
    heated_intact = !heated_intact;
    heated_tampered = List.rev !tampered;
    recovered_files;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "scanned %d lines: %d heated intact, %d tampered; recovered %d files@."
    r.lines_scanned r.heated_intact
    (List.length r.heated_tampered)
    (List.length r.recovered_files);
  List.iter
    (fun (line, v) ->
      Format.fprintf ppf "  line %d: %a@." line Sero.Tamper.pp_verdict v)
    r.heated_tampered;
  List.iter
    (fun f ->
      Format.fprintf ppf "  ino %d (%a, group %d): %d bytes, %s@." f.r_ino
        Enc.pp_kind f.r_kind f.r_heat_group f.r_size
        (if f.r_complete then "complete" else "incomplete"))
    r.recovered_files
