(** On-medium encodings of the LFS structures (inodes, directory
    payloads, segment summaries, checkpoints).  All encoders produce
    strings that fit the 512-byte sector payload unless stated
    otherwise; decoders return [None] on malformed input rather than
    raising, because fsck feeds them arbitrary block contents. *)

type kind = Regular | Directory

val equal_kind : kind -> kind -> bool
val pp_kind : Format.formatter -> kind -> unit

val n_direct : int
(** Direct block pointers per inode (12). *)

val pointers_per_indirect : int
(** Block pointers held by one indirect block (64). *)

val max_file_blocks : int
(** 12 + 64 + 64·64 = 4172 blocks ≈ 2 MiB. *)

type inode = {
  ino : int;
  kind : kind;
  nlink : int;  (** Hard-link count; [ln]/[rm] must rewrite it, which is
                    what makes them tamper-evident on a heated file. *)
  heat_group : int;
      (** Heat-affinity tag: files expected to be heated together carry
          the same group, and the allocator segregates groups
          (Section 4.1's clustering policy). *)
  size : int;  (** Bytes. *)
  mtime : float;
  generation : int;
  direct : int array;  (** [n_direct] PBAs; 0 = hole. *)
  single_ind : int;  (** PBA of the single-indirect block; 0 = none. *)
  double_ind : int;
}

val fresh_inode : ino:int -> kind:kind -> heat_group:int -> inode
val encode_inode : inode -> string
val decode_inode : string -> inode option

val encode_pointer_block : int array -> string
(** An indirect block: [pointers_per_indirect] u64 PBAs. *)

val decode_pointer_block : string -> int array option

type dirent = { name : string; entry_ino : int; entry_kind : kind }

val encode_dirents : dirent list -> string
(** @raise Invalid_argument if the encoding exceeds one block payload;
    directories span multiple blocks by encoding each block's worth of
    entries separately (see {!Dirops}). *)

val decode_dirents : string -> dirent list option

val dirent_fits : dirent list -> bool
(** Would {!encode_dirents} fit a block payload? *)

(** {1 Segment summary} *)

type owner =
  | Data_of of { o_ino : int; block_index : int }
      (** File block [block_index] of file [o_ino]. *)
  | Inode_of of int
  | Indirect_of of { o_ino : int; slot : int }
      (** [slot] = -1 for the single-indirect, -2 for the double-
          indirect root, k >= 0 for the k-th child of the double. *)
  | Summary_block
  | Unused

type summary = { seg_index : int; owners : owner array }
(** One owner entry per usable block of the segment, in segment order. *)

val encode_summary : summary -> string
val decode_summary : string -> summary option

(** {1 Checkpoint} *)

type seg_state = Seg_free | Seg_open | Seg_closed | Seg_heated

val equal_seg_state : seg_state -> seg_state -> bool
val pp_seg_state : Format.formatter -> seg_state -> unit

type seg_record = {
  state : seg_state;
  live_blocks : int;
  seg_group : int;
  age : int;  (** Checkpoint sequence number of the last write. *)
}

type checkpoint = {
  seq : int;
  timestamp : float;
  next_ino : int;
  imap : (int * int) list;  (** (ino, inode PBA), sorted by ino. *)
  segments : seg_record array;
}

val encode_checkpoint : checkpoint -> string
(** Multi-block blob (length-prefixed, CRC-protected); the caller chunks
    it into blocks. *)

val decode_checkpoint : string -> checkpoint option
