(** Directories and path resolution.

    A directory is a regular-looking file whose blocks each hold an
    independently decodable entry list ({!Enc.encode_dirents}); entries
    never span blocks, so fsck can parse any single recovered block.
    Paths are slash-separated, absolute ("/a/b/c"); the root directory
    is inode 1. *)

val root_ino : int

val init_root : State.t -> unit
(** Create the root directory on a freshly formatted file system. *)

val lookup : State.t -> string -> (int * Enc.kind) option
(** Resolve an absolute path to [(ino, kind)]. *)

val store_empty : State.t -> int -> unit
(** Write an empty entry list into a fresh directory inode. *)

val entries : State.t -> int -> Enc.dirent list
(** All entries of directory [ino].
    @raise State.Fs_error if [ino] is not a directory. *)

val add_entry : State.t -> dir:int -> Enc.dirent -> unit
(** @raise State.Fs_error on duplicate names. *)

val remove_entry : State.t -> dir:int -> string -> unit
(** @raise State.Fs_error if the name is absent. *)

val split_path : string -> (string list, string) result
(** Normalised components of an absolute path. *)

val parent_of : State.t -> string -> (int * string, string) result
(** [(parent directory inode, basename)] of a path, or an error
    message. *)
