let payload = Codec.Sector.payload_bytes

type kind = Regular | Directory

let equal_kind a b =
  match (a, b) with
  | Regular, Regular | Directory, Directory -> true
  | (Regular | Directory), _ -> false

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with Regular -> "file" | Directory -> "dir")

let kind_to_int = function Regular -> 0 | Directory -> 1
let kind_of_int = function 0 -> Some Regular | 1 -> Some Directory | _ -> None

let n_direct = 12
let pointers_per_indirect = payload / 8 (* 64 *)
let max_file_blocks =
  n_direct + pointers_per_indirect + (pointers_per_indirect * pointers_per_indirect)

type inode = {
  ino : int;
  kind : kind;
  nlink : int;
  heat_group : int;
  size : int;
  mtime : float;
  generation : int;
  direct : int array;
  single_ind : int;
  double_ind : int;
}

let fresh_inode ~ino ~kind ~heat_group =
  {
    ino;
    kind;
    nlink = 1;
    heat_group;
    size = 0;
    mtime = 0.;
    generation = 0;
    direct = Array.make n_direct 0;
    single_ind = 0;
    double_ind = 0;
  }

let inode_magic = 0x494E (* "IN" *)

let encode_inode i =
  let w = Codec.Binio.W.create ~capacity:160 () in
  Codec.Binio.W.u16 w inode_magic;
  Codec.Binio.W.u32 w i.ino;
  Codec.Binio.W.u8 w (kind_to_int i.kind);
  Codec.Binio.W.u16 w i.nlink;
  Codec.Binio.W.u32 w i.heat_group;
  Codec.Binio.W.u64 w i.size;
  Codec.Binio.W.f64 w i.mtime;
  Codec.Binio.W.u32 w i.generation;
  Array.iter (fun p -> Codec.Binio.W.u64 w p) i.direct;
  Codec.Binio.W.u64 w i.single_ind;
  Codec.Binio.W.u64 w i.double_ind;
  Codec.Binio.W.contents w

let decode_inode s =
  let r = Codec.Binio.R.of_string s in
  match
    let magic = Codec.Binio.R.u16 r in
    if magic <> inode_magic then None
    else begin
      let ino = Codec.Binio.R.u32 r in
      match kind_of_int (Codec.Binio.R.u8 r) with
      | None -> None
      | Some kind ->
          let nlink = Codec.Binio.R.u16 r in
          let heat_group = Codec.Binio.R.u32 r in
          let size = Codec.Binio.R.u64 r in
          let mtime = Codec.Binio.R.f64 r in
          let generation = Codec.Binio.R.u32 r in
          let direct = Array.make n_direct 0 in
          for k = 0 to n_direct - 1 do
            direct.(k) <- Codec.Binio.R.u64 r
          done;
          let single_ind = Codec.Binio.R.u64 r in
          let double_ind = Codec.Binio.R.u64 r in
          Some
            {
              ino;
              kind;
              nlink;
              heat_group;
              size;
              mtime;
              generation;
              direct;
              single_ind;
              double_ind;
            }
    end
  with
  | exception Codec.Binio.R.Truncated -> None
  | v -> v

let encode_pointer_block ptrs =
  if Array.length ptrs <> pointers_per_indirect then
    invalid_arg "Enc.encode_pointer_block: wrong arity";
  let w = Codec.Binio.W.create ~capacity:payload () in
  Array.iter (fun p -> Codec.Binio.W.u64 w p) ptrs;
  Codec.Binio.W.contents w

let decode_pointer_block s =
  if String.length s < 8 * pointers_per_indirect then None
  else
    let r = Codec.Binio.R.of_string s in
    match
      let a = Array.make pointers_per_indirect 0 in
      for k = 0 to pointers_per_indirect - 1 do
        a.(k) <- Codec.Binio.R.u64 r
      done;
      a
    with
    | exception Codec.Binio.R.Truncated -> None
    | a -> Some a

(* {1 Directory payloads} *)

type dirent = { name : string; entry_ino : int; entry_kind : kind }

let dirent_magic = 0x4452 (* "DR" *)

let encode_dirents entries =
  let w = Codec.Binio.W.create ~capacity:payload () in
  Codec.Binio.W.u16 w dirent_magic;
  Codec.Binio.W.u16 w (List.length entries);
  List.iter
    (fun e ->
      Codec.Binio.W.u32 w e.entry_ino;
      Codec.Binio.W.u8 w (kind_to_int e.entry_kind);
      Codec.Binio.W.str w e.name)
    entries;
  let s = Codec.Binio.W.contents w in
  if String.length s > payload then
    invalid_arg "Enc.encode_dirents: does not fit one block";
  s

let dirent_fits entries =
  match encode_dirents entries with
  | _ -> true
  | exception Invalid_argument _ -> false

let decode_dirents s =
  let r = Codec.Binio.R.of_string s in
  match
    let magic = Codec.Binio.R.u16 r in
    if magic <> dirent_magic then None
    else begin
      let n = Codec.Binio.R.u16 r in
      let rec go k acc =
        if k = 0 then Some (List.rev acc)
        else begin
          let entry_ino = Codec.Binio.R.u32 r in
          match kind_of_int (Codec.Binio.R.u8 r) with
          | None -> None
          | Some entry_kind ->
              let name = Codec.Binio.R.str r in
              go (k - 1) ({ name; entry_ino; entry_kind } :: acc)
        end
      in
      go n []
    end
  with
  | exception Codec.Binio.R.Truncated -> None
  | v -> v

(* {1 Segment summary} *)

type owner =
  | Data_of of { o_ino : int; block_index : int }
  | Inode_of of int
  | Indirect_of of { o_ino : int; slot : int }
  | Summary_block
  | Unused

type summary = { seg_index : int; owners : owner array }

let summary_magic = 0x5347 (* "SG" *)

let encode_owner w = function
  | Unused -> Codec.Binio.W.u8 w 0
  | Data_of { o_ino; block_index } ->
      Codec.Binio.W.u8 w 1;
      Codec.Binio.W.u32 w o_ino;
      Codec.Binio.W.u32 w block_index
  | Inode_of ino ->
      Codec.Binio.W.u8 w 2;
      Codec.Binio.W.u32 w ino
  | Indirect_of { o_ino; slot } ->
      Codec.Binio.W.u8 w 3;
      Codec.Binio.W.u32 w o_ino;
      Codec.Binio.W.u32 w (slot + 2) (* shift so -2 encodes as 0 *)
  | Summary_block -> Codec.Binio.W.u8 w 4

let decode_owner r =
  match Codec.Binio.R.u8 r with
  | 0 -> Some Unused
  | 1 ->
      let o_ino = Codec.Binio.R.u32 r in
      let block_index = Codec.Binio.R.u32 r in
      Some (Data_of { o_ino; block_index })
  | 2 -> Some (Inode_of (Codec.Binio.R.u32 r))
  | 3 ->
      let o_ino = Codec.Binio.R.u32 r in
      let slot = Codec.Binio.R.u32 r - 2 in
      Some (Indirect_of { o_ino; slot })
  | 4 -> Some Summary_block
  | _ -> None

let encode_summary s =
  let w = Codec.Binio.W.create ~capacity:payload () in
  Codec.Binio.W.u16 w summary_magic;
  Codec.Binio.W.u32 w s.seg_index;
  Codec.Binio.W.u16 w (Array.length s.owners);
  Array.iter (encode_owner w) s.owners;
  let out = Codec.Binio.W.contents w in
  if String.length out > payload then
    invalid_arg "Enc.encode_summary: does not fit one block";
  out

let decode_summary str =
  let r = Codec.Binio.R.of_string str in
  match
    let magic = Codec.Binio.R.u16 r in
    if magic <> summary_magic then None
    else begin
      let seg_index = Codec.Binio.R.u32 r in
      let n = Codec.Binio.R.u16 r in
      let rec go k acc =
        if k = 0 then Some (List.rev acc)
        else
          match decode_owner r with
          | None -> None
          | Some o -> go (k - 1) (o :: acc)
      in
      match go n [] with
      | None -> None
      | Some owners -> Some { seg_index; owners = Array.of_list owners }
    end
  with
  | exception Codec.Binio.R.Truncated -> None
  | v -> v

(* {1 Checkpoint} *)

type seg_state = Seg_free | Seg_open | Seg_closed | Seg_heated

let equal_seg_state a b =
  match (a, b) with
  | Seg_free, Seg_free | Seg_open, Seg_open | Seg_closed, Seg_closed
  | Seg_heated, Seg_heated ->
      true
  | (Seg_free | Seg_open | Seg_closed | Seg_heated), _ -> false

let pp_seg_state ppf s =
  Format.pp_print_string ppf
    (match s with
    | Seg_free -> "free"
    | Seg_open -> "open"
    | Seg_closed -> "closed"
    | Seg_heated -> "heated")

let seg_state_to_int = function
  | Seg_free -> 0
  | Seg_open -> 1
  | Seg_closed -> 2
  | Seg_heated -> 3

let seg_state_of_int = function
  | 0 -> Some Seg_free
  | 1 -> Some Seg_open
  | 2 -> Some Seg_closed
  | 3 -> Some Seg_heated
  | _ -> None

type seg_record = {
  state : seg_state;
  live_blocks : int;
  seg_group : int;
  age : int;
}

type checkpoint = {
  seq : int;
  timestamp : float;
  next_ino : int;
  imap : (int * int) list;
  segments : seg_record array;
}

let checkpoint_magic = 0x53455243 (* "SERC" *)

let encode_checkpoint c =
  let w = Codec.Binio.W.create ~capacity:4096 () in
  Codec.Binio.W.u32 w checkpoint_magic;
  Codec.Binio.W.u64 w c.seq;
  Codec.Binio.W.f64 w c.timestamp;
  Codec.Binio.W.u32 w c.next_ino;
  Codec.Binio.W.u32 w (List.length c.imap);
  List.iter
    (fun (ino, pba) ->
      Codec.Binio.W.u32 w ino;
      Codec.Binio.W.u64 w pba)
    c.imap;
  Codec.Binio.W.u32 w (Array.length c.segments);
  Array.iter
    (fun s ->
      Codec.Binio.W.u8 w (seg_state_to_int s.state);
      Codec.Binio.W.u16 w s.live_blocks;
      Codec.Binio.W.u32 w s.seg_group;
      Codec.Binio.W.u32 w s.age)
    c.segments;
  let body = Codec.Binio.W.contents w in
  let crc = Codec.Crc32.string body in
  let out = Codec.Binio.W.create ~capacity:(String.length body + 8) () in
  Codec.Binio.W.u32 out (Int32.to_int crc land 0xFFFFFFFF);
  Codec.Binio.W.u32 out (String.length body);
  Codec.Binio.W.raw out body;
  Codec.Binio.W.contents out

let decode_checkpoint s =
  let r = Codec.Binio.R.of_string s in
  match
    let crc = Codec.Binio.R.u32 r in
    let len = Codec.Binio.R.u32 r in
    let body = Codec.Binio.R.raw r len in
    if Int32.to_int (Codec.Crc32.string body) land 0xFFFFFFFF <> crc then None
    else begin
      let r = Codec.Binio.R.of_string body in
      let magic = Codec.Binio.R.u32 r in
      if magic <> checkpoint_magic then None
      else begin
        let seq = Codec.Binio.R.u64 r in
        let timestamp = Codec.Binio.R.f64 r in
        let next_ino = Codec.Binio.R.u32 r in
        let n_imap = Codec.Binio.R.u32 r in
        (* Explicit recursion: reads must happen strictly in order. *)
        let rec read_imap k acc =
          if k = 0 then List.rev acc
          else begin
            let ino = Codec.Binio.R.u32 r in
            let pba = Codec.Binio.R.u64 r in
            read_imap (k - 1) ((ino, pba) :: acc)
          end
        in
        let imap = read_imap n_imap [] in
        let n_segs = Codec.Binio.R.u32 r in
        let rec segs k acc =
          if k = 0 then Some (List.rev acc)
          else
            match seg_state_of_int (Codec.Binio.R.u8 r) with
            | None -> None
            | Some state ->
                let live_blocks = Codec.Binio.R.u16 r in
                let seg_group = Codec.Binio.R.u32 r in
                let age = Codec.Binio.R.u32 r in
                segs (k - 1) ({ state; live_blocks; seg_group; age } :: acc)
        in
        match segs n_segs [] with
        | None -> None
        | Some segments ->
            Some
              { seq; timestamp; next_ino; imap; segments = Array.of_list segments }
      end
    end
  with
  | exception Codec.Binio.R.Truncated -> None
  | v -> v
