(** Raw-medium recovery — the paper's availability argument made
    executable: "assume that the attacker clears the directory
    structure, then a fsck style scan of the medium would definitely
    recover (albeit slowly) all the heated files" (Section 5.2).

    The scan needs {e no} checkpoint, imap or directory: it walks every
    line, electrically probes for burned hashes, verifies each burned
    line, then parses the data blocks of intact heated lines looking for
    inode frames and resolves their pointer trees. *)

type recovered = {
  r_ino : int;
  r_kind : Enc.kind;
  r_size : int;
  r_heat_group : int;
  r_complete : bool;
      (** All data blocks were readable (holes count as readable). *)
  r_content_sha256 : Hash.Sha256.t option;
      (** Digest of the recovered bytes when [r_complete]. *)
}

type report = {
  lines_scanned : int;
  heated_intact : int;
  heated_tampered : (int * Sero.Tamper.verdict) list;
  recovered_files : recovered list;
}

val run : Sero.Device.t -> report
(** Full forensic scan of a device. *)

val pp_report : Format.formatter -> report -> unit
