(** File-level operations: byte reads and writes over the block-pointer
    tree (12 direct pointers, one single- and one double-indirect block).

    At run time the whole pointer tree of a file is held flat in the
    state's pointer cache; indirect blocks are materialised on flush, in
    the file's heat group, and the old versions freed — the no-overwrite
    log discipline.  Flushing is what the classic LFS write clustering
    amounts to here: data blocks stream out as they are written, while
    inodes and indirect blocks are gathered and written on [sync],
    before a heat, or at unmount. *)

val block_size : int
(** = {!Codec.Sector.payload_bytes}. *)

val create_inode :
  State.t -> kind:Enc.kind -> heat_group:int -> Enc.inode
(** Allocate an inode number, cache the fresh inode and mark it dirty
    (it reaches the medium at the next flush). *)

val pointers : State.t -> int -> int array
(** Current block-pointer array of file [ino] (grown to the file's
    block count; 0 entries are holes). *)

val block_count : Enc.inode -> int

val read : State.t -> int -> offset:int -> len:int -> string
(** Reads beyond EOF are truncated; holes read as zero bytes. *)

val write : State.t -> int -> offset:int -> string -> unit
(** Copy-on-write at block granularity: each touched block is allocated
    fresh at its group's log head and the old block freed. *)

val truncate : State.t -> int -> size:int -> unit
(** Shrink (or declare a smaller size for) file [ino], freeing blocks
    past the new end.  Growing is a no-op. *)

val set_pointer : State.t -> int -> int -> int -> unit
(** [set_pointer st ino index pba] updates one block pointer in the
    cache (the cleaner and the relocation path use this; it does not
    mark the inode dirty by itself). *)

val flush_inode : State.t -> int -> unit
(** Write dirty pointer blocks and the inode itself; update the imap. *)

val flush_inode_with :
  ?must_move:(int -> bool) ->
  State.t -> int -> alloc:(owner:Enc.owner -> string -> int) -> unit
(** Like {!flush_inode} but unconditional and with caller-chosen block
    placement — the heat path uses it to direct metadata into the
    private relocation segment.  Indirect blocks whose contents are
    unchanged are left where they are unless [must_move pba] is true
    (the cleaner passes the victim-segment predicate). *)

val flush_all : State.t -> unit
(** Flush every dirty inode. *)

val delete : State.t -> int -> unit
(** Free data, indirect and inode blocks; forget the inode.
    @raise State.Fs_error if the file lies in a heated line — read-only
    data cannot be deleted (its blocks are not reusable anyway). *)

val all_block_pbas : State.t -> int -> int list
(** Every PBA the file occupies right now: data (no holes), indirect
    blocks, and the inode block if it has one. *)
