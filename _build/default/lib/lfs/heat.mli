(** Heating files: turning selected data read-only with burned hashes.

    Heating happens at line granularity, so a file must first {e own}
    whole lines.  Two strategies, matching the Section 4.1 discussion:

    - {b in place} — if no other file has live blocks in the file's
      lines, pad the gaps and heat where the data already is ("lines are
      heated in the right place, avoiding the need to copy them").
      Under the clustering policy this is the common case.
    - {b relocate} — otherwise copy the file (data, indirect blocks and
      inode) into privately claimed fresh segments, line-aligned, then
      heat.  The copies are the price the paper predicts for unclustered
      allocation; E9 measures them.

    The inode travels with the data into a heated line, which is what
    makes [rm]/[ln] tamper-evident (Section 5.2: deleting implies
    rewriting the inode, invalidating the burned hash). *)

type strategy = Auto | Always_relocate | Never_relocate

type result_ok = {
  lines : int list;  (** Heated lines, ascending. *)
  relocated_blocks : int;
  collateral_frozen : int;
      (** Live blocks of other files that became read-only because they
          shared a heated line ([Never_relocate] only). *)
}

val heat_file : State.t -> ino:int -> strategy:strategy -> result_ok
(** @raise State.Fs_error if the file is already (partly) heated, the
    device refuses a burn, or space runs out while relocating. *)

val file_lines : State.t -> ino:int -> int list
(** Lines currently occupied by the file (data + metadata). *)

val verify_file : State.t -> ino:int -> (int * Sero.Tamper.verdict) list
(** Device-level verdict for every line the file occupies. *)

val is_file_heated : State.t -> ino:int -> bool
(** True when every line the file occupies is heated. *)
