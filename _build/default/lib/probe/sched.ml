type policy = Fifo | Sstf | Elevator

let pp_policy ppf p =
  Format.pp_print_string ppf
    (match p with Fifo -> "fifo" | Sstf -> "sstf" | Elevator -> "elevator")

let all_policies = [ Fifo; Sstf; Elevator ]

let order policy ~current offsets =
  match policy with
  | Fifo -> offsets
  | Sstf ->
      let remaining = ref offsets and pos = ref current and out = ref [] in
      while !remaining <> [] do
        let nearest =
          List.fold_left
            (fun best o ->
              match best with
              | None -> Some o
              | Some b -> if abs (o - !pos) < abs (b - !pos) then Some o else best)
            None !remaining
        in
        match nearest with
        | None -> ()
        | Some o ->
            out := o :: !out;
            pos := o;
            (* Remove one occurrence. *)
            let removed = ref false in
            remaining :=
              List.filter
                (fun x ->
                  if x = o && not !removed then begin
                    removed := true;
                    false
                  end
                  else true)
                !remaining
      done;
      List.rev !out
  | Elevator ->
      let sorted = List.sort compare offsets in
      let ahead = List.filter (fun o -> o >= current) sorted in
      let behind = List.filter (fun o -> o < current) sorted in
      ahead @ behind

let travel_cost act ~current offsets =
  (* Euclidean distance between consecutive scan offsets under the
     serpentine mapping, matching what Actuator.seek would charge. *)
  let dist a b =
    let xa, ya = Actuator.xy_of_offset act a in
    let xb, yb = Actuator.xy_of_offset act b in
    let dx = float_of_int (xb - xa) and dy = float_of_int (yb - ya) in
    sqrt ((dx *. dx) +. (dy *. dy))
  in
  let total, _ =
    List.fold_left
      (fun (acc, pos) o -> (acc +. dist pos o, o))
      (0., current) offsets
  in
  total
