lib/probe/tips.mli: Pmedia
