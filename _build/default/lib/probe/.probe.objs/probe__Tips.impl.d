lib/probe/tips.ml: Array Pmedia
