lib/probe/pdevice.ml: Actuator Array Option Physics Pmedia Sim Timing Tips
