lib/probe/actuator.mli: Timing
