lib/probe/pdevice.mli: Physics Pmedia Timing Tips
