lib/probe/timing.mli:
