lib/probe/timing.ml: Float Physics
