lib/probe/sched.mli: Actuator Format
