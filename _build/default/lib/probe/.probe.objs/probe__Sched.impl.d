lib/probe/sched.ml: Actuator Format List
