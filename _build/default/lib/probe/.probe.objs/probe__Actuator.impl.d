lib/probe/actuator.ml: Timing
