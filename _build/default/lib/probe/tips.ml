type t = {
  n_tips : int;
  field_size : int;
  field_cols : int;
  failed : bool array;
  uses : int array;
}

let create ~n_tips ~medium =
  let n = Pmedia.Medium.size medium in
  if n_tips <= 0 then invalid_arg "Tips.create: n_tips must be positive";
  if n mod n_tips <> 0 then
    invalid_arg "Tips.create: medium size must be a multiple of n_tips";
  let field_size = n / n_tips in
  (* Tip fields tile the medium column-wise: each tip's field is a
     vertical stripe [cols / n_tips] dots wide (when that divides) or a
     row-major slice otherwise; only the width matters for seek cost. *)
  let cols = Pmedia.Medium.cols medium in
  let field_cols = if cols mod n_tips = 0 then cols / n_tips else cols in
  let field_cols = max 1 (min field_cols field_size) in
  {
    n_tips;
    field_size;
    field_cols;
    failed = Array.make n_tips false;
    uses = Array.make n_tips 0;
  }

let n_tips t = t.n_tips
let field_size t = t.field_size
let field_cols t = t.field_cols

let locate t dot =
  if dot < 0 || dot >= t.n_tips * t.field_size then
    invalid_arg "Tips.locate: dot address out of range";
  (dot mod t.n_tips, dot / t.n_tips)

let dot_of t ~tip ~offset =
  if tip < 0 || tip >= t.n_tips || offset < 0 || offset >= t.field_size then
    invalid_arg "Tips.dot_of: out of range";
  (offset * t.n_tips) + tip

let fail_tip t i = t.failed.(i) <- true
let tip_failed t i = t.failed.(i)

let failed_count t =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.failed

let record_use t ~tip = t.uses.(tip) <- t.uses.(tip) + 1
let uses t ~tip = t.uses.(tip)
