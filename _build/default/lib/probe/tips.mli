(** The probe (tip) array and the dot address mapping.

    The device stripes consecutive logical dot addresses across the
    tips: logical dot [a] lives under tip [a mod n_tips] at scan offset
    [a / n_tips] of that tip's private field.  Because one actuator
    moves all tips together (Section 6, Figure 4), a run of [n_tips]
    consecutive logical dots is transferred in a single bit time —
    that is the parallelism that lets a 10 µs/bit tip deliver a usable
    device data rate.

    Tips wear and can fail outright; dots under a failed tip read as
    noise and ignore writes, which the sector-level Reed–Solomon code
    must absorb (this is how bad-block handling is exercised). *)

type t

val create : n_tips:int -> medium:Pmedia.Medium.t -> t
(** Partitions the medium's dots among [n_tips] tips.
    @raise Invalid_argument if the medium size is not a multiple of
    [n_tips]. *)

val n_tips : t -> int
val field_size : t -> int
(** Dots per tip field. *)

val field_cols : t -> int
(** Width in dots of one tip field (the medium's column count divided
    by the tip-grid width; used by the actuator for 2-D seek cost). *)

val locate : t -> int -> int * int
(** [locate t dot] is [(tip, offset)] for a logical dot address. *)

val dot_of : t -> tip:int -> offset:int -> int
(** Inverse of {!locate}. *)

val fail_tip : t -> int -> unit
(** Mark a tip broken (manufacturing fallout or wear-out). *)

val tip_failed : t -> int -> bool
val failed_count : t -> int

val record_use : t -> tip:int -> unit
val uses : t -> tip:int -> int
(** Operation count per tip — tip wear figure. *)
