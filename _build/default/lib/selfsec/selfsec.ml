type entry = {
  seq : int;
  at : float;
  op : string;
  path : string;
  offset : int;
  before_digest : Hash.Sha256.t;
  after_digest : Hash.Sha256.t;
}

type t = {
  fs : Lfs.Fs.t;
  epoch_len : int;
  mutable epoch : int;
  mutable in_epoch : int;  (* entries in the current epoch *)
  mutable next_seq : int;
  mutable chain : Hash.Sha256.t;  (* rolling digest over all entries *)
}

let fs t = t.fs
let dir = "/.selfsec"
let epoch_path n = Printf.sprintf "%s/epoch-%06d" dir n
let ( let* ) = Result.bind

(* {1 Entry encoding} — each entry is a self-delimiting record; the
   rolling chain digest covers the serialised bytes, so any replay
   starting from the genesis digest recomputes it. *)

let encode_entry e ~chain =
  let w = Codec.Binio.W.create () in
  Codec.Binio.W.u32 w e.seq;
  Codec.Binio.W.f64 w e.at;
  Codec.Binio.W.str w e.op;
  Codec.Binio.W.str w e.path;
  Codec.Binio.W.u64 w e.offset;
  Codec.Binio.W.raw w (Hash.Sha256.to_raw e.before_digest);
  Codec.Binio.W.raw w (Hash.Sha256.to_raw e.after_digest);
  let body = Codec.Binio.W.contents w in
  let next_chain = Hash.Sha256.digest_concat [ Hash.Sha256.to_raw chain; body ] in
  let framed = Codec.Binio.W.create () in
  Codec.Binio.W.u32 framed (String.length body);
  Codec.Binio.W.raw framed body;
  Codec.Binio.W.raw framed (Hash.Sha256.to_raw next_chain);
  (Codec.Binio.W.contents framed, next_chain)

let decode_entries ~chain blob =
  let r = Codec.Binio.R.of_string blob in
  let rec go chain acc =
    if Codec.Binio.R.remaining r = 0 then Ok (List.rev acc, chain)
    else
      match
        let len = Codec.Binio.R.u32 r in
        let body = Codec.Binio.R.raw r len in
        let recorded_chain = Hash.Sha256.of_raw (Codec.Binio.R.raw r 32) in
        (body, recorded_chain)
      with
      | exception Codec.Binio.R.Truncated -> Error "journal truncated"
      | body, recorded_chain ->
          let expected =
            Hash.Sha256.digest_concat [ Hash.Sha256.to_raw chain; body ]
          in
          if not (Hash.Sha256.equal expected recorded_chain) then
            Error "journal chain broken"
          else begin
            let br = Codec.Binio.R.of_string body in
            match
              let seq = Codec.Binio.R.u32 br in
              let at = Codec.Binio.R.f64 br in
              let op = Codec.Binio.R.str br in
              let path = Codec.Binio.R.str br in
              let offset = Codec.Binio.R.u64 br in
              let before_digest = Hash.Sha256.of_raw (Codec.Binio.R.raw br 32) in
              let after_digest = Hash.Sha256.of_raw (Codec.Binio.R.raw br 32) in
              { seq; at; op; path; offset; before_digest; after_digest }
            with
            | exception Codec.Binio.R.Truncated -> Error "entry truncated"
            | e -> go recorded_chain (e :: acc)
          end
  in
  go chain []

(* {1 Setup} *)

let genesis = Hash.Sha256.digest_string "selfsec-genesis"

let epoch_numbers fs =
  match Lfs.Fs.readdir fs dir with
  | Error _ -> []
  | Ok entries ->
      List.filter_map
        (fun (e : Lfs.Enc.dirent) ->
          match String.length e.Lfs.Enc.name with
          | 12 when String.sub e.Lfs.Enc.name 0 6 = "epoch-" ->
              int_of_string_opt (String.sub e.Lfs.Enc.name 6 6)
          | _ -> None)
        entries
      |> List.sort compare

let read_epoch fs n ~chain =
  let* blob = Lfs.Fs.read_file fs (epoch_path n) in
  decode_entries ~chain blob

let wrap ?(epoch_len = 32) fs =
  if epoch_len <= 0 then Error "epoch_len must be positive"
  else begin
    let* () =
      if Lfs.Fs.exists fs dir then Ok () else Lfs.Fs.mkdir fs dir
    in
    let epochs = epoch_numbers fs in
    (* Replay existing epochs to restore the chain and counters. *)
    let rec replay chain seq = function
      | [] -> Ok (chain, seq, 0)
      | [ last ] ->
          let* entries, chain = read_epoch fs last ~chain in
          let seq =
            List.fold_left (fun _ (e : entry) -> e.seq + 1) seq entries
          in
          Ok (chain, seq, List.length entries)
      | n :: rest ->
          let* entries, chain = read_epoch fs n ~chain in
          let seq =
            List.fold_left (fun _ (e : entry) -> e.seq + 1) seq entries
          in
          replay chain seq rest
    in
    let* chain, next_seq, in_epoch = replay genesis 0 epochs in
    let epoch = match List.rev epochs with [] -> 0 | last :: _ -> last in
    let* () =
      if Lfs.Fs.exists fs (epoch_path epoch) then Ok ()
      else Lfs.Fs.create fs ~heat_group:999 (epoch_path epoch)
    in
    Ok { fs; epoch_len; epoch; in_epoch; next_seq; chain }
  end

(* {1 Journalling} *)

let seal_epoch t =
  let* heated = Ok (Lfs.Fs.is_heated t.fs (epoch_path t.epoch)) in
  let* () =
    match heated with
    | Ok true -> Ok ()
    | _ -> (
        match Lfs.Fs.heat t.fs (epoch_path t.epoch) with
        | Ok _ -> Ok ()
        | Error e -> Error (Printf.sprintf "seal: %s" e))
  in
  t.epoch <- t.epoch + 1;
  t.in_epoch <- 0;
  Lfs.Fs.create t.fs ~heat_group:999 (epoch_path t.epoch)

let journal t ~op ~path ~offset ~before_digest ~after_digest =
  let e =
    {
      seq = t.next_seq;
      at = 0.;
      op;
      path;
      offset;
      before_digest;
      after_digest;
    }
  in
  let framed, next_chain = encode_entry e ~chain:t.chain in
  let* () = Lfs.Fs.append t.fs (epoch_path t.epoch) framed in
  t.chain <- next_chain;
  t.next_seq <- t.next_seq + 1;
  t.in_epoch <- t.in_epoch + 1;
  if t.in_epoch >= t.epoch_len then seal_epoch t else Ok ()

let digest_range t path ~offset ~len =
  match Lfs.Fs.read_range t.fs path ~offset ~len with
  | Ok s -> Hash.Sha256.digest_string s
  | Error _ -> Hash.Sha256.zero

(* {1 Audited operations} *)

let create t ?(heat_group = 0) path =
  let* () = Lfs.Fs.create t.fs ~heat_group path in
  journal t ~op:"create" ~path ~offset:0 ~before_digest:Hash.Sha256.zero
    ~after_digest:Hash.Sha256.zero

let write_file t path ~offset data =
  let before = digest_range t path ~offset ~len:(String.length data) in
  let* () = Lfs.Fs.write_file t.fs path ~offset data in
  journal t ~op:"write" ~path ~offset ~before_digest:before
    ~after_digest:(Hash.Sha256.digest_string data)

let unlink t path =
  let before =
    match Lfs.Fs.read_file t.fs path with
    | Ok s -> Hash.Sha256.digest_string s
    | Error _ -> Hash.Sha256.zero
  in
  let* () = Lfs.Fs.unlink t.fs path in
  journal t ~op:"unlink" ~path ~offset:0 ~before_digest:before
    ~after_digest:Hash.Sha256.zero

(* {1 Audit} *)

let history t =
  let rec go chain acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest ->
        let* entries, chain = read_epoch t.fs n ~chain in
        go chain (List.rev_append entries acc) rest
  in
  go genesis [] (epoch_numbers t.fs)

type audit = {
  entries : int;
  sealed_epochs : int;
  open_entries : int;
  chain_intact : bool;
  tampered_epochs : (int * Sero.Tamper.verdict) list;
}

let verify_history t =
  let epochs = epoch_numbers t.fs in
  let chain_result =
    let rec go chain seq total = function
      | [] -> Ok total
      | n :: rest -> (
          match read_epoch t.fs n ~chain with
          | Error _ -> Error "unreadable epoch"
          | Ok (entries, chain) ->
              let rec seqs s = function
                | [] -> Ok s
                | (e : entry) :: es -> if e.seq = s then seqs (s + 1) es else Error "sequence gap"
              in
              let* seq = seqs seq entries in
              go chain seq (total + List.length entries) rest)
    in
    go genesis 0 0 epochs
  in
  let sealed = ref 0 and tampered = ref [] in
  List.iter
    (fun n ->
      match Lfs.Fs.is_heated t.fs (epoch_path n) with
      | Ok true -> (
          incr sealed;
          match Lfs.Fs.verify t.fs (epoch_path n) with
          | Ok verdicts ->
              List.iter
                (fun (_, v) ->
                  if Sero.Tamper.is_tampered v then tampered := (n, v) :: !tampered)
                verdicts
          | Error _ ->
              tampered := (n, Sero.Tamper.Tampered [ Sero.Tamper.Meta_corrupt ]) :: !tampered)
      | Ok false | Error _ -> ())
    epochs;
  match chain_result with
  | Ok total ->
      Ok
        {
          entries = total;
          sealed_epochs = !sealed;
          open_entries = t.in_epoch;
          chain_intact = true;
          tampered_epochs = List.rev !tampered;
        }
  | Error _ ->
      Ok
        {
          entries = t.next_seq;
          sealed_epochs = !sealed;
          open_entries = t.in_epoch;
          chain_intact = false;
          tampered_epochs = List.rev !tampered;
        }
