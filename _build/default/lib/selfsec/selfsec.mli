(** Self-securing storage on SERO (Section 8, "Tamper-evident storage
    as a building block", after Strunk et al.).

    Self-securing storage trusts the storage system more than the host:
    the device keeps its own log of every command it is given, so a
    compromised host cannot silently rewrite history.  The classic
    design's weakness is that a powerful intruder can attack the log
    itself; the paper's observation is that on a SERO device "the logs
    can be heated".

    This wrapper interposes on a {!Lfs.Fs} file system: every mutating
    command is journalled (with SHA-256 digests of the data before and
    after) into an append-only epoch log, and every [epoch_len] commands
    the epoch file is heated — from then on that window of history is
    physically immutable.  {!verify_history} replays the journal and
    checks both the burned lines and the digest chain. *)

type t

val wrap : ?epoch_len:int -> Lfs.Fs.t -> (t, string) result
(** Interpose on a mounted file system; journal files live under
    [/.selfsec].  [epoch_len] (default 32) commands per sealed epoch. *)

val fs : t -> Lfs.Fs.t

(** {1 Audited operations} — same contracts as the {!Lfs.Fs} calls they
    wrap, plus journalling. *)

val create : t -> ?heat_group:int -> string -> (unit, string) result
val write_file : t -> string -> offset:int -> string -> (unit, string) result
val unlink : t -> string -> (unit, string) result

val seal_epoch : t -> (unit, string) result
(** Close and heat the current epoch early (e.g. on shutdown or on an
    intrusion alarm). *)

(** {1 The audit trail} *)

type entry = {
  seq : int;
  at : float;
  op : string;  (** "create" | "write" | "unlink". *)
  path : string;
  offset : int;
  before_digest : Hash.Sha256.t;  (** Digest of the overwritten range. *)
  after_digest : Hash.Sha256.t;
}

val history : t -> (entry list, string) result
(** The full journalled history, sealed epochs first. *)

type audit = {
  entries : int;
  sealed_epochs : int;
  open_entries : int;  (** Entries still in the unsealed epoch. *)
  chain_intact : bool;
      (** Every entry's sequence number and digest chain parses and is
          strictly increasing. *)
  tampered_epochs : (int * Sero.Tamper.verdict) list;
      (** Sealed epochs whose lines no longer verify. *)
}

val verify_history : t -> (audit, string) result
