(** A fossilised index on a SERO device (Section 4.2, second proposal;
    after Zhu & Hsu, SIGMOD 2005).

    The index is a tree built {e from the root down}: a record's key
    hash completely determines its path (branch [i] at level [l] is byte
    [l] of the hash modulo the branching factor), so neither inserts nor
    lookups need any mutable bookkeeping that an attacker could rewrite.
    Entries are appended into the current node for their path; when a
    node fills, it is {e sealed}.  On the original design sealing meant
    copying the node to a WORM device — "a SERO device provides
    appropriate support for a fossilised index as it makes copying the
    completed node to the WORM unnecessary": here each node is exactly
    one heat line, and sealing is heating that line in place.

    Entries in sealed nodes are tamper-evident; entries still in open
    nodes are the design's inherent vulnerability window, which shrinks
    as nodes fill.  {!verify} checks every sealed node's burned hash. *)

type t

val create : ?branching:int -> Sero.Device.t -> t
(** A fresh index over a device.  [branching] (default 16) is the
    fan-out per level. *)

val reload : ?branching:int -> Sero.Device.t -> (t, string) result
(** Rebuild the node map of an existing index by scanning node headers —
    no checkpoint needed (the structure is self-describing, as a
    trustworthy index must be). *)

val device : t -> Sero.Device.t

val insert : t -> key:string -> value:string -> (unit, string) result
(** Append [(key, value)] ([value] at most 128 bytes).  Keys may repeat;
    all values are retained (history-independence: nothing is ever
    overwritten). *)

val find : t -> key:string -> (string list, string) result
(** Every value ever inserted under [key], in insertion order. *)

val verify : t -> (int * Sero.Tamper.verdict) list
(** Device verdict of every sealed node's line; an empty list of
    non-[Intact] entries means the fossil record is untouched. *)

type stats = {
  nodes : int;
  sealed_nodes : int;
  entries : int;
  depth : int;  (** Deepest level with a node. *)
}

val stats : t -> stats
