let max_value = 128
let block_magic = 0x464E (* "FN" *)

type node = {
  line : int;
  level : int;
  path : string; (* branch bytes from the root, one per level *)
  mutable entries : (string * string) list; (* (raw key hash, value), reversed *)
  mutable sealed : bool;
}

type t = {
  dev : Sero.Device.t;
  lay : Sero.Layout.t;
  branching : int;
  nodes : (string, node) Hashtbl.t; (* path -> node *)
  mutable next_line : int;
}

let create ?(branching = 16) dev =
  if branching < 2 || branching > 256 then
    invalid_arg "Fossil.create: branching must be in 2..256";
  {
    dev;
    lay = Sero.Device.layout dev;
    branching;
    nodes = Hashtbl.create 64;
    next_line = 0;
  }

let device t = t.dev

(* {1 Node block encoding}

   Every block of a node is independently decodable:
   magic, level, path, entry count, then (key hash, value) pairs. *)

let encode_block ~level ~path entries =
  let w = Codec.Binio.W.create () in
  Codec.Binio.W.u16 w block_magic;
  Codec.Binio.W.u8 w level;
  Codec.Binio.W.str w path;
  Codec.Binio.W.u16 w (List.length entries);
  List.iter
    (fun (kh, v) ->
      Codec.Binio.W.raw w kh;
      Codec.Binio.W.str w v)
    entries;
  Codec.Binio.W.contents w

let decode_block payload =
  let r = Codec.Binio.R.of_string payload in
  match
    let magic = Codec.Binio.R.u16 r in
    if magic <> block_magic then None
    else begin
      let level = Codec.Binio.R.u8 r in
      let path = Codec.Binio.R.str r in
      let count = Codec.Binio.R.u16 r in
      let rec go k acc =
        if k = 0 then List.rev acc
        else begin
          let kh = Codec.Binio.R.raw r 32 in
          let v = Codec.Binio.R.str r in
          go (k - 1) ((kh, v) :: acc)
        end
      in
      Some (level, path, go count [])
    end
  with
  | exception Codec.Binio.R.Truncated -> None
  | v -> v

let block_fits ~level ~path entries =
  String.length (encode_block ~level ~path entries)
  <= Codec.Sector.payload_bytes

(* Pack entries (insertion order) into block payload lists. *)
let pack_blocks ~level ~path entries =
  let blocks = ref [] and current = ref [] in
  let flush () =
    if !current <> [] || !blocks = [] then begin
      blocks := List.rev !current :: !blocks;
      current := []
    end
  in
  List.iter
    (fun e ->
      if block_fits ~level ~path (List.rev (e :: !current)) then
        current := e :: !current
      else begin
        flush ();
        current := [ e ]
      end)
    entries;
  flush ();
  List.rev !blocks

let node_capacity_ok t ~level ~path entries =
  List.length (pack_blocks ~level ~path entries)
  <= Sero.Layout.data_blocks_per_line t.lay

let write_node t node =
  let pbas = Sero.Layout.data_blocks_of_line t.lay node.line in
  let blocks =
    pack_blocks ~level:node.level ~path:node.path (List.rev node.entries)
  in
  List.iteri
    (fun i entry_block ->
      let pba = List.nth pbas i in
      match
        Sero.Device.write_block t.dev ~pba
          (encode_block ~level:node.level ~path:node.path entry_block)
      with
      | Ok () -> ()
      | Error e ->
          failwith
            (Format.asprintf "fossil: write refused: %a"
               Sero.Device.pp_write_error e))
    blocks

let seal_node t node =
  (* Pad untouched blocks, then heat the node's line in place. *)
  let blocks =
    pack_blocks ~level:node.level ~path:node.path (List.rev node.entries)
  in
  let used = List.length blocks in
  let pbas = Sero.Layout.data_blocks_of_line t.lay node.line in
  List.iteri
    (fun i pba ->
      if i >= used then
        match
          Sero.Device.write_block t.dev ~pba
            (String.make Codec.Sector.payload_bytes '\x00')
        with
        | Ok () -> ()
        | Error e ->
            failwith
              (Format.asprintf "fossil: pad refused: %a"
                 Sero.Device.pp_write_error e))
    pbas;
  (match Sero.Device.heat_line t.dev ~line:node.line () with
  | Ok _ -> ()
  | Error e ->
      failwith
        (Format.asprintf "fossil: seal of line %d failed: %a" node.line
           Sero.Device.pp_heat_error e));
  node.sealed <- true

let new_node t ~level ~path =
  if t.next_line >= Sero.Layout.n_lines t.lay then
    failwith "fossil: device full";
  let node = { line = t.next_line; level; path; entries = []; sealed = false } in
  t.next_line <- t.next_line + 1;
  Hashtbl.replace t.nodes path node;
  node

let branch_byte t kh level = Char.chr (Char.code kh.[level] mod t.branching)

let path_for t kh level = String.init level (fun l -> branch_byte t kh l)

let ( let* ) = Result.bind

let insert t ~key ~value =
  if String.length value > max_value then
    Error (Printf.sprintf "fossil: value exceeds %d bytes" max_value)
  else begin
    let kh = Hash.Sha256.to_raw (Hash.Sha256.digest_string key) in
    let rec descend level =
      if level >= 32 then Error "fossil: tree exhausted (32 levels)"
      else begin
        let path = path_for t kh level in
        let node =
          match Hashtbl.find_opt t.nodes path with
          | Some n -> n
          | None -> new_node t ~level ~path
        in
        if node.sealed then descend (level + 1)
        else begin
          let candidate = (kh, value) :: node.entries in
          if node_capacity_ok t ~level ~path (List.rev candidate) then begin
            node.entries <- candidate;
            write_node t node;
            (* Seal when no further entry of the smallest size fits. *)
            let probe = (String.make 32 '\x00', "") :: candidate in
            if not (node_capacity_ok t ~level ~path (List.rev probe)) then
              seal_node t node;
            Ok ()
          end
          else begin
            (* This entry itself does not fit: seal and push down. *)
            seal_node t node;
            descend (level + 1)
          end
        end
      end
    in
    descend 0
  end

let find t ~key =
  let kh = Hash.Sha256.to_raw (Hash.Sha256.digest_string key) in
  let rec walk level acc =
    if level >= 32 then Ok (List.rev acc)
    else
      match Hashtbl.find_opt t.nodes (path_for t kh level) with
      | None -> Ok (List.rev acc)
      | Some node ->
          let matches =
            List.filter_map
              (fun (h, v) -> if String.equal h kh then Some v else None)
              (List.rev node.entries)
          in
          if node.sealed then walk (level + 1) (List.rev_append matches acc)
          else Ok (List.rev acc @ matches)
  in
  walk 0 []

let verify t =
  Hashtbl.fold
    (fun _ node acc ->
      if node.sealed then
        (node.line, Sero.Device.verify_line t.dev ~line:node.line) :: acc
      else acc)
    t.nodes []
  |> List.sort compare

type stats = { nodes : int; sealed_nodes : int; entries : int; depth : int }

let stats (t : t) =
  Hashtbl.fold
    (fun _ node acc ->
      {
        nodes = acc.nodes + 1;
        sealed_nodes = (acc.sealed_nodes + if node.sealed then 1 else 0);
        entries = acc.entries + List.length node.entries;
        depth = max acc.depth node.level;
      })
    t.nodes
    { nodes = 0; sealed_nodes = 0; entries = 0; depth = 0 }

let reload ?branching dev =
  Sero.Device.refresh_heated_cache dev;
  let t = create ?branching dev in
  let lay = t.lay in
  let* () = Ok () in
  let rec scan_line line =
    if line >= Sero.Layout.n_lines lay then Ok ()
    else begin
      let pbas = Sero.Layout.data_blocks_of_line lay line in
      let first = List.hd pbas in
      match Sero.Device.read_block dev ~pba:first with
      | Error _ -> Ok () (* first unreadable/blank line ends the arena *)
      | Ok payload -> (
          match decode_block payload with
          | None -> Ok () (* not a fossil node: end of arena *)
          | Some (level, path, _) ->
              let entries = ref [] in
              List.iter
                (fun pba ->
                  match Sero.Device.read_block dev ~pba with
                  | Error _ -> ()
                  | Ok p -> (
                      match decode_block p with
                      | Some (_, p', es) when String.equal p' path ->
                          entries := !entries @ es
                      | Some _ | None -> ()))
                pbas;
              let sealed = Sero.Device.is_line_heated dev ~line in
              let node =
                { line; level; path; entries = List.rev !entries; sealed }
              in
              Hashtbl.replace t.nodes path node;
              t.next_line <- line + 1;
              scan_line (line + 1))
    end
  in
  let* () = scan_line 0 in
  Ok t
