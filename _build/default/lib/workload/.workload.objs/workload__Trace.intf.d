lib/workload/trace.mli: Format Lfs
