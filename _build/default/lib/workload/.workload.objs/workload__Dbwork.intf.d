lib/workload/dbwork.mli: Lfs Sero
