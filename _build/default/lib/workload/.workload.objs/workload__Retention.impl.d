lib/workload/retention.ml: Array Char Format Lfs List Printf Sero Sim String
