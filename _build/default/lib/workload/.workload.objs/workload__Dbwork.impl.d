lib/workload/dbwork.ml: Char Format Lfs List Printf Probe Sero Sim String Zipf
