lib/workload/trace.ml: Codec Format In_channel Lfs List Out_channel Printf Result String
