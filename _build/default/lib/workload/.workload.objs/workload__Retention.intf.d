lib/workload/retention.mli: Lfs Sero
