(** Zipf-distributed sampling for skewed access patterns (hot database
    pages, popular files). *)

type t

val create : n:int -> theta:float -> t
(** Support {0..n-1} with exponent [theta] (0 = uniform; 0.99 = the
    usual YCSB-style hot spot). *)

val sample : t -> Sim.Prng.t -> int
val pmf : t -> int -> float
