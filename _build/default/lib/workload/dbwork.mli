(** The paper's motivating workload (Section 1): a live database under
    random page updates, periodically snapshotted for audit, where each
    snapshot must become tamper-evident while the live data stays hot.

    The generator produces a fine-grained op stream in which snapshot
    materialisation is {e interleaved} with ongoing page updates — this
    concurrency is what scatters snapshot blocks under a naive
    single-log-head allocator and what the clustering policy defends
    against (E9). *)

type op =
  | Update of { table : int; page : int }
      (** Rewrite one 512-byte page of a live table file. *)
  | Snap_begin of { snap : int }
  | Snap_chunk of { snap : int; seq : int; pages : int }
      (** Append [pages] pages to the snapshot file. *)
  | Snap_freeze of { snap : int }  (** Heat the completed snapshot. *)

type config = {
  tables : int;
  pages_per_table : int;
  zipf_theta : float;
  updates_between_snapshots : int;
  snapshot_pages : int;  (** Size of each snapshot in pages. *)
  chunk_pages : int;  (** Snapshot materialisation granularity. *)
  interleave : int;
      (** Live updates interleaved between successive snapshot chunks —
          the concurrency knob. *)
  snapshots : int;
  seed : int;
}

val default_config : config
(** 4 tables × 256 pages, theta 0.9, 400 updates between snapshots,
    64-page snapshots in 8-page chunks with 6 interleaved updates,
    8 snapshots, seed 7. *)

val generate : config -> op list

type run_result = {
  fs_stats : Lfs.Fs.stats;
  snap_verdicts_ok : int;
  snap_verdicts_bad : int;
  updates_blocked : int;
      (** Live-page updates refused because an in-place heat froze the
          line they lived in — the collateral cost of heating without
          clustering (Section 4.1). *)
  wall : float;  (** Simulated seconds for the whole run. *)
}

val run :
  ?strategy:Lfs.Heat.strategy ->
  clustering:bool ->
  device:Sero.Device.config ->
  config ->
  run_result
(** Build a device + LFS with the given allocation policy, replay the
    op stream, verify every frozen snapshot, and report. *)
