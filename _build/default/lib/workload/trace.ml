type op =
  | Mkdir of string
  | Create of { path : string; heat_group : int }
  | Write of { path : string; offset : int; data : string }
  | Append of { path : string; data : string }
  | Unlink of string
  | Heat of string
  | Sync

let pp_op ppf = function
  | Mkdir p -> Format.fprintf ppf "mkdir %s" p
  | Create { path; heat_group } -> Format.fprintf ppf "create %s g%d" path heat_group
  | Write { path; offset; data } ->
      Format.fprintf ppf "write %s @%d +%d" path offset (String.length data)
  | Append { path; data } ->
      Format.fprintf ppf "append %s +%d" path (String.length data)
  | Unlink p -> Format.fprintf ppf "unlink %s" p
  | Heat p -> Format.fprintf ppf "heat %s" p
  | Sync -> Format.pp_print_string ppf "sync"

type t = op list

let magic = "SEROTRC1"

let encode ops =
  let w = Codec.Binio.W.create ~capacity:4096 () in
  Codec.Binio.W.raw w magic;
  Codec.Binio.W.u32 w (List.length ops);
  List.iter
    (fun op ->
      match op with
      | Mkdir p ->
          Codec.Binio.W.u8 w 0;
          Codec.Binio.W.str w p
      | Create { path; heat_group } ->
          Codec.Binio.W.u8 w 1;
          Codec.Binio.W.str w path;
          Codec.Binio.W.u32 w heat_group
      | Write { path; offset; data } ->
          Codec.Binio.W.u8 w 2;
          Codec.Binio.W.str w path;
          Codec.Binio.W.u64 w offset;
          Codec.Binio.W.str w data
      | Append { path; data } ->
          Codec.Binio.W.u8 w 3;
          Codec.Binio.W.str w path;
          Codec.Binio.W.str w data
      | Unlink p ->
          Codec.Binio.W.u8 w 4;
          Codec.Binio.W.str w p
      | Heat p ->
          Codec.Binio.W.u8 w 5;
          Codec.Binio.W.str w p
      | Sync -> Codec.Binio.W.u8 w 6)
    ops;
  Codec.Binio.W.contents w

let decode s =
  let r = Codec.Binio.R.of_string s in
  match
    let m = Codec.Binio.R.raw r (String.length magic) in
    if not (String.equal m magic) then Error "not a trace file"
    else begin
      let n = Codec.Binio.R.u32 r in
      let rec go k acc =
        if k = 0 then Ok (List.rev acc)
        else
          match Codec.Binio.R.u8 r with
          | 0 -> go (k - 1) (Mkdir (Codec.Binio.R.str r) :: acc)
          | 1 ->
              let path = Codec.Binio.R.str r in
              let heat_group = Codec.Binio.R.u32 r in
              go (k - 1) (Create { path; heat_group } :: acc)
          | 2 ->
              let path = Codec.Binio.R.str r in
              let offset = Codec.Binio.R.u64 r in
              let data = Codec.Binio.R.str r in
              go (k - 1) (Write { path; offset; data } :: acc)
          | 3 ->
              let path = Codec.Binio.R.str r in
              let data = Codec.Binio.R.str r in
              go (k - 1) (Append { path; data } :: acc)
          | 4 -> go (k - 1) (Unlink (Codec.Binio.R.str r) :: acc)
          | 5 -> go (k - 1) (Heat (Codec.Binio.R.str r) :: acc)
          | 6 -> go (k - 1) (Sync :: acc)
          | tag -> Error (Printf.sprintf "unknown op tag %d" tag)
      in
      go n []
    end
  with
  | exception Codec.Binio.R.Truncated -> Error "trace truncated"
  | v -> v

let save ops path =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (encode ops))

let load path =
  match
    In_channel.with_open_bin path In_channel.input_all
  with
  | exception Sys_error e -> Error e
  | raw -> decode raw

type outcome = { applied : int; refused : int }

let apply ?strategy fs op =
  match op with
  | Mkdir p -> Lfs.Fs.mkdir fs p
  | Create { path; heat_group } -> Lfs.Fs.create fs ~heat_group path
  | Write { path; offset; data } -> Lfs.Fs.write_file fs path ~offset data
  | Append { path; data } -> Lfs.Fs.append fs path data
  | Unlink p -> Lfs.Fs.unlink fs p
  | Heat p -> Result.map (fun _ -> ()) (Lfs.Fs.heat fs ?strategy p)
  | Sync ->
      Lfs.Fs.sync fs;
      Ok ()

let replay ?strategy fs ops =
  List.fold_left
    (fun acc op ->
      match apply ?strategy fs op with
      | Ok () -> { acc with applied = acc.applied + 1 }
      | Error _ -> { acc with refused = acc.refused + 1 })
    { applied = 0; refused = 0 }
    ops

let recorder fs =
  let ops = ref [] in
  let exec op =
    ops := op :: !ops;
    apply fs op
  in
  let captured () = List.rev !ops in
  (exec, captured)
