(** File-system operation traces: record, serialise, replay.

    Experiments that compare allocation policies need the {e same}
    operation stream applied to differently configured file systems; a
    trace makes the stream a first-class, storable value.  Replay is
    deterministic: replaying one trace onto two identically configured
    devices yields bit-identical media (tested). *)

type op =
  | Mkdir of string
  | Create of { path : string; heat_group : int }
  | Write of { path : string; offset : int; data : string }
  | Append of { path : string; data : string }
  | Unlink of string
  | Heat of string
  | Sync

val pp_op : Format.formatter -> op -> unit

type t = op list

val encode : t -> string
val decode : string -> (t, string) result

val save : t -> string -> unit
(** Write to a file.  @raise Sys_error on IO failure. *)

val load : string -> (t, string) result

type outcome = {
  applied : int;
  refused : int;  (** Operations the FS rejected (e.g. writes to heated files). *)
}

val replay : ?strategy:Lfs.Heat.strategy -> Lfs.Fs.t -> t -> outcome
(** Apply every operation in order; refusals are counted, not fatal —
    a trace captured on one policy may legitimately see refusals on
    another. *)

val recorder : Lfs.Fs.t -> (op -> (unit, string) result) * (unit -> t)
(** [(exec, captured) = recorder fs]: [exec op] applies [op] to [fs]
    and appends it to the trace being built (refused operations are
    recorded too — they are part of the workload); [captured ()]
    returns the trace so far. *)
