type record = { klass : int; payload : string }

type config = {
  classes : int;
  records : int;
  record_bytes : int;
  audit_every : int;
  seed : int;
}

let default_config =
  { classes = 3; records = 300; record_bytes = 256; audit_every = 40; seed = 11 }

let generate cfg =
  let rng = Sim.Prng.create cfg.seed in
  List.init cfg.records (fun i ->
      {
        klass = Sim.Prng.int rng cfg.classes;
        payload =
          String.init cfg.record_bytes (fun j ->
              Char.chr (65 + ((i + j) mod 26)));
      })

type class_result = {
  class_id : int;
  records_stored : int;
  heated_lines : int;
  verdict_ok : bool;
}

type run_result = { per_class : class_result list; fs_stats : Lfs.Fs.stats }

let fail fmt = Format.kasprintf failwith fmt
let ok_exn what = function Ok v -> v | Error e -> fail "retention %s: %s" what e

let run ~device cfg =
  let dev = Sero.Device.create device in
  let fs = Lfs.Fs.format dev in
  (* One archive file per retention class; a new epoch file is opened
     after each audit freeze (heated files are immutable). *)
  let epoch = Array.make cfg.classes 0 in
  let since_audit = Array.make cfg.classes 0 in
  let stored = Array.make cfg.classes 0 in
  let heated_lines = Array.make cfg.classes 0 in
  let verdicts_ok = Array.make cfg.classes true in
  let path k = Printf.sprintf "/class-%d.%d" k epoch.(k) in
  for k = 0 to cfg.classes - 1 do
    ok_exn "create" (Lfs.Fs.create fs ~heat_group:(k + 1) (path k))
  done;
  List.iter
    (fun r ->
      let k = r.klass in
      ok_exn "append" (Lfs.Fs.append fs (path k) r.payload);
      stored.(k) <- stored.(k) + 1;
      since_audit.(k) <- since_audit.(k) + 1;
      if since_audit.(k) >= cfg.audit_every then begin
        let result = ok_exn "heat" (Lfs.Fs.heat fs (path k)) in
        heated_lines.(k) <- heated_lines.(k) + List.length result.Lfs.Heat.lines;
        let verdicts = ok_exn "verify" (Lfs.Fs.verify fs (path k)) in
        if
          not
            (List.for_all
               (fun (_, v) ->
                 match v with
                 | Sero.Tamper.Intact -> true
                 | Sero.Tamper.Not_heated | Sero.Tamper.Tampered _ -> false)
               verdicts)
        then verdicts_ok.(k) <- false;
        since_audit.(k) <- 0;
        epoch.(k) <- epoch.(k) + 1;
        ok_exn "create epoch" (Lfs.Fs.create fs ~heat_group:(k + 1) (path k))
      end)
    (generate cfg);
  Lfs.Fs.sync fs;
  {
    per_class =
      List.init cfg.classes (fun k ->
          {
            class_id = k;
            records_stored = stored.(k);
            heated_lines = heated_lines.(k);
            verdict_ok = verdicts_ok.(k);
          });
    fs_stats = Lfs.Fs.stats fs;
  }
