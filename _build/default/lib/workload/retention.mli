(** Compliance-retention workload (Section 8, "Deletion"): records
    arrive tagged with a retention class (expiry date); the paper
    advocates segregating data by expiry so whole devices can be
    decommissioned when their data expires.

    The generator produces a stream of records; {!run} appends them to
    one append-only file per class, heating a class file whenever it
    reaches the audit size, and reports how much WMRM capacity each
    class consumed — the input to the decommissioning argument. *)

type record = { klass : int; payload : string }

type config = {
  classes : int;  (** Distinct retention classes (e.g. 1y/3y/7y). *)
  records : int;
  record_bytes : int;
  audit_every : int;  (** Heat a class file after this many records. *)
  seed : int;
}

val default_config : config

val generate : config -> record list

type class_result = {
  class_id : int;
  records_stored : int;
  heated_lines : int;
  verdict_ok : bool;
}

type run_result = {
  per_class : class_result list;
  fs_stats : Lfs.Fs.stats;
}

val run : device:Sero.Device.config -> config -> run_result
