type op =
  | Update of { table : int; page : int }
  | Snap_begin of { snap : int }
  | Snap_chunk of { snap : int; seq : int; pages : int }
  | Snap_freeze of { snap : int }

type config = {
  tables : int;
  pages_per_table : int;
  zipf_theta : float;
  updates_between_snapshots : int;
  snapshot_pages : int;
  chunk_pages : int;
  interleave : int;
  snapshots : int;
  seed : int;
}

let default_config =
  {
    tables = 4;
    pages_per_table = 256;
    zipf_theta = 0.9;
    updates_between_snapshots = 400;
    snapshot_pages = 64;
    chunk_pages = 8;
    interleave = 6;
    snapshots = 8;
    seed = 7;
  }

let generate cfg =
  let rng = Sim.Prng.create cfg.seed in
  let zipf = Zipf.create ~n:cfg.pages_per_table ~theta:cfg.zipf_theta in
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  let emit_update () =
    emit
      (Update
         { table = Sim.Prng.int rng cfg.tables; page = Zipf.sample zipf rng })
  in
  for snap = 0 to cfg.snapshots - 1 do
    for _ = 1 to cfg.updates_between_snapshots do
      emit_update ()
    done;
    emit (Snap_begin { snap });
    let chunks = (cfg.snapshot_pages + cfg.chunk_pages - 1) / cfg.chunk_pages in
    for seq = 0 to chunks - 1 do
      let pages =
        min cfg.chunk_pages (cfg.snapshot_pages - (seq * cfg.chunk_pages))
      in
      emit (Snap_chunk { snap; seq; pages });
      (* Live traffic continues while the snapshot materialises. *)
      for _ = 1 to cfg.interleave do
        emit_update ()
      done
    done;
    emit (Snap_freeze { snap })
  done;
  List.rev !ops

type run_result = {
  fs_stats : Lfs.Fs.stats;
  snap_verdicts_ok : int;
  snap_verdicts_bad : int;
  updates_blocked : int;
  wall : float;
}

let fail fmt = Format.kasprintf failwith fmt
let ok_exn what = function Ok v -> v | Error e -> fail "dbwork %s: %s" what e

let page_bytes = 512

let run ?(strategy = Lfs.Heat.Auto) ~clustering ~device cfg =
  let dev = Sero.Device.create device in
  let policy = { Lfs.State.default_policy with Lfs.State.clustering } in
  let fs = Lfs.Fs.format ~policy dev in
  let table_path t = Printf.sprintf "/table-%d" t in
  let snap_path s = Printf.sprintf "/snap-%d" s in
  (* Live tables are heat group 0 (never heated); each snapshot gets its
     own group so the clustering allocator can segregate it. *)
  for t = 0 to cfg.tables - 1 do
    ok_exn "create table" (Lfs.Fs.create fs ~heat_group:0 (table_path t));
    (* Materialise every page once so updates are overwrites. *)
    ok_exn "init table"
      (Lfs.Fs.write_file fs (table_path t) ~offset:0
         (String.make (cfg.pages_per_table * page_bytes) '\x00'))
  done;
  let page_payload rng =
    String.init page_bytes (fun _ -> Char.chr (33 + Sim.Prng.int rng 94))
  in
  let rng = Sim.Prng.create (cfg.seed + 1) in
  let snaps = ref [] in
  let blocked = ref 0 in
  List.iter
    (fun op ->
      match op with
      | Update { table; page } -> (
          (* An in-place heat may have frozen the page's line; the
             database sees the update refused (collateral damage of
             heating without clustering). *)
          match
            Lfs.Fs.write_file fs (table_path table)
              ~offset:(page * page_bytes) (page_payload rng)
          with
          | Ok () -> ()
          | Error _ -> incr blocked)
      | Snap_begin { snap } ->
          ok_exn "snap create"
            (Lfs.Fs.create fs ~heat_group:(1 + snap) (snap_path snap));
          snaps := snap :: !snaps
      | Snap_chunk { snap; seq; pages } ->
          ok_exn "snap chunk"
            (Lfs.Fs.write_file fs (snap_path snap)
               ~offset:(seq * cfg.chunk_pages * page_bytes)
               (String.concat ""
                  (List.init pages (fun _ -> page_payload rng))))
      | Snap_freeze { snap } ->
          let _ = ok_exn "freeze" (Lfs.Fs.heat fs ~strategy (snap_path snap)) in
          ())
    (generate cfg);
  Lfs.Fs.sync fs;
  let ok_count = ref 0 and bad = ref 0 in
  List.iter
    (fun snap ->
      let verdicts = ok_exn "verify" (Lfs.Fs.verify fs (snap_path snap)) in
      List.iter
        (fun (_, v) ->
          match v with
          | Sero.Tamper.Intact -> incr ok_count
          | Sero.Tamper.Not_heated | Sero.Tamper.Tampered _ -> incr bad)
        verdicts)
    !snaps;
  {
    fs_stats = Lfs.Fs.stats fs;
    snap_verdicts_ok = !ok_count;
    snap_verdicts_bad = !bad;
    updates_blocked = !blocked;
    wall = Probe.Pdevice.elapsed (Sero.Device.pdevice dev);
  }
