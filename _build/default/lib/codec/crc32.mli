(** CRC-32 (IEEE 802.3, reflected polynomial [0xEDB88320]).

    Used in sector framing: the paper (following Pozidis et al.) budgets
    ~15% sector overhead for "the sector header, error correction, and
    cyclic redundancy check" (Section 3, "Sector operations"). *)

val string : ?crc:int32 -> string -> int32
(** [string ?crc s] extends checksum [crc] (default: fresh) over [s]. *)

val bytes : ?crc:int32 -> bytes -> int -> int -> int32
(** [bytes ?crc b off len] extends the checksum over a byte slice. *)
