lib/codec/manchester.mli: Format
