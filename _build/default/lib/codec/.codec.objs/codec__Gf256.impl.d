lib/codec/gf256.ml: Array
