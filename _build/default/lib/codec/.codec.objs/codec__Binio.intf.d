lib/codec/binio.mli:
