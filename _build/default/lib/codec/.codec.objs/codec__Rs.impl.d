lib/codec/rs.ml: Array Buffer Bytes Char Gf256 List String
