lib/codec/crc32.mli:
