lib/codec/wom.ml: Array
