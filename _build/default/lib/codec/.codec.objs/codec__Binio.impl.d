lib/codec/binio.ml: Buffer Char Int64 String
