lib/codec/gf256.mli:
