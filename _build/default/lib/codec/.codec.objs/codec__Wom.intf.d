lib/codec/wom.mli:
