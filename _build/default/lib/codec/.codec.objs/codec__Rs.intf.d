lib/codec/rs.mli:
