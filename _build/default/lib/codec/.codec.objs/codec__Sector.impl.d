lib/codec/sector.ml: Binio Buffer Bytes Crc32 Format Int32 Rs String
