lib/codec/manchester.ml: Array Bytes Char Format List String
