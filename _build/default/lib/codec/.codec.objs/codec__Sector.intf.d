lib/codec/sector.mli: Format
