let encode_first v =
  match v with
  | 0 -> [| 0; 0; 0 |]
  | 1 -> [| 0; 0; 1 |]
  | 2 -> [| 0; 1; 0 |]
  | 3 -> [| 1; 0; 0 |]
  | _ -> invalid_arg "Wom.encode_first: value must be in 0..3"

let encode_second v =
  match v with
  | 0 -> [| 1; 1; 1 |]
  | 1 -> [| 1; 1; 0 |]
  | 2 -> [| 1; 0; 1 |]
  | 3 -> [| 0; 1; 1 |]
  | _ -> invalid_arg "Wom.encode_second: value must be in 0..3"

let weight c = c.(0) + c.(1) + c.(2)

let decode cells =
  if Array.length cells <> 3 then invalid_arg "Wom.decode: need 3 cells";
  match weight cells with
  | 0 -> Some (0, 1)
  | 1 ->
      if cells.(2) = 1 then Some (1, 1)
      else if cells.(1) = 1 then Some (2, 1)
      else Some (3, 1)
  | 3 -> Some (0, 2)
  | 2 ->
      if cells.(0) = 0 then Some (3, 2)
      else if cells.(1) = 0 then Some (2, 2)
      else Some (1, 2)
  | _ -> None

type write_outcome = Written of int array | Exhausted

(* A write may only set cells, never clear them. *)
let covers target current =
  (target.(0) >= current.(0)) && (target.(1) >= current.(1))
  && (target.(2) >= current.(2))

let write cells v =
  if v < 0 || v > 3 then invalid_arg "Wom.write: value must be in 0..3";
  match decode cells with
  | None -> Exhausted
  | Some (cur, gen) ->
      if cur = v then Written (Array.copy cells)
      else if gen = 2 then Exhausted
      else
        let target = encode_second v in
        if covers target cells then Written target else Exhausted

let rate = 4. /. 3.
let manchester_rate = 1. /. 2.
