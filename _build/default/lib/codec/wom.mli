(** Rivest–Shamir write-once-memory (WOM) code.

    Section 8 of the paper notes that Manchester encoding wastes half the
    write-once capacity and that "for small values of N we could employ
    more efficient coding techniques" (citing Moran, Naor and Segev).
    The classic Rivest–Shamir code stores {e two successive writes} of a
    2-bit value in only 3 write-once cells, a rate of 4/3 bits per cell
    versus Manchester's 1/2 — at the price of losing the [HH]-is-tamper
    invariant, which is why the device uses it only for metadata
    generations, not for the burned hash itself.

    First-write codewords: 00→000, 01→001, 10→010, 11→100.
    Second write (if the value changed): the complement, 00→111, 01→110,
    10→101, 11→011.  Decoding: a codeword with at most one set cell is a
    first-generation value, otherwise second-generation. *)

type write_outcome =
  | Written of int array  (** New 3-cell state after the write. *)
  | Exhausted  (** Both generations already used; cells unchanged. *)

val encode_first : int -> int array
(** [encode_first v] is the first-generation codeword for [v] in 0..3. *)

val write : int array -> int -> write_outcome
(** [write cells v] writes value [v] (0..3) on top of the current 3-cell
    state, using the second generation if needed.  Never clears a cell.
    Writing the currently stored value is a no-op ([Written cells]). *)

val decode : int array -> (int * int) option
(** [decode cells] is [Some (value, generation)] with [generation] 1 or
    2, or [None] if the cell pattern is unreachable by the protocol
    (i.e. evidence of misuse). *)

val rate : float
(** Information rate in bits per write-once cell: [4. /. 3.]. *)

val manchester_rate : float
(** Manchester's single-generation rate, [1. /. 2.], for comparison. *)
