type cell = Zero | One | Blank | Tampered

let equal_cell a b =
  match (a, b) with
  | Zero, Zero | One, One | Blank, Blank | Tampered, Tampered -> true
  | (Zero | One | Blank | Tampered), _ -> false

let pp_cell ppf c =
  Format.pp_print_string ppf
    (match c with
    | Zero -> "HU"
    | One -> "UH"
    | Blank -> "UU"
    | Tampered -> "HH")

let encoded_length n_bytes = 16 * n_bytes

let encode payload =
  let n = String.length payload in
  let dots = Array.make (16 * n) false in
  for byte = 0 to n - 1 do
    let v = Char.code payload.[byte] in
    for bit = 0 to 7 do
      let logical = (v lsr (7 - bit)) land 1 in
      let cell = (byte * 8) + bit in
      (* 0 -> HU: heat the first dot; 1 -> UH: heat the second. *)
      if logical = 0 then dots.(2 * cell) <- true
      else dots.((2 * cell) + 1) <- true
    done
  done;
  dots

type decode_result = {
  payload : string;
  tampered_cells : int list;
  blank_cells : int list;
}

let decode ~heated ~n_bytes =
  let out = Bytes.make n_bytes '\x00' in
  let tampered = ref [] and blank = ref [] in
  for byte = 0 to n_bytes - 1 do
    let v = ref 0 in
    for bit = 0 to 7 do
      let cell = (byte * 8) + bit in
      let a = heated (2 * cell) and b = heated ((2 * cell) + 1) in
      (match (a, b) with
      | true, false -> () (* HU = 0 *)
      | false, true -> v := !v lor (1 lsl (7 - bit)) (* UH = 1 *)
      | false, false -> blank := cell :: !blank
      | true, true -> tampered := cell :: !tampered)
    done;
    Bytes.set out byte (Char.chr !v)
  done;
  {
    payload = Bytes.unsafe_to_string out;
    tampered_cells = List.rev !tampered;
    blank_cells = List.rev !blank;
  }

let is_clean r = r.tampered_cells = [] && r.blank_cells = []

let max_adjacent_heated dots =
  let best = ref 0 and run = ref 0 in
  Array.iter
    (fun h ->
      if h then begin
        incr run;
        if !run > !best then best := !run
      end
      else run := 0)
    dots;
  !best
