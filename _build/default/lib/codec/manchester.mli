(** Manchester encoding over write-once cells (paper, Sections 1 and 3).

    Following Molnar et al. as adapted by the paper's Figure 3, each
    logical bit occupies a {e cell} of two physical dots that can each be
    either heated ([H]) or unheated ([U]):

    - logical [0] is written as the cell [HU],
    - logical [1] is written as the cell [UH],
    - [UU] is a cell that has never been written (all dots start unheated),
    - [HH] is physically reachable only by heating a dot of an
      already-written cell — it is evidence of tampering.

    Because heating is irreversible, an attacker can only turn [U] into
    [H]; every such change to a valid cell yields the invalid cell [HH].
    The encoding also guarantees that a heated dot has at most one heated
    neighbour, which limits thermal-crosstalk damage (Section 3,
    "Heat a line" and Section 7). *)

type cell = Zero | One | Blank | Tampered
(** Decoded value of one two-dot cell: [Zero] = [HU], [One] = [UH],
    [Blank] = [UU], [Tampered] = [HH]. *)

val equal_cell : cell -> cell -> bool
val pp_cell : Format.formatter -> cell -> unit

val encode : string -> bool array
(** [encode payload] maps each bit of [payload] (bytes scanned MSB first)
    to a two-dot cell; [true] in the result means "heat this dot".  The
    result has [16 * String.length payload] entries. *)

val encoded_length : int -> int
(** [encoded_length n] is the number of dots needed for [n] payload
    bytes, i.e. [16 * n]. *)

type decode_result = {
  payload : string;  (** Best-effort decoded bytes (tampered/blank cells decode as 0). *)
  tampered_cells : int list;  (** Cell indices found in state [HH]. *)
  blank_cells : int list;  (** Cell indices found in state [UU]. *)
}

val decode : heated:(int -> bool) -> n_bytes:int -> decode_result
(** [decode ~heated ~n_bytes] reads [16 * n_bytes] dots through the
    [heated] predicate (dot index -> is the dot heated?) and decodes the
    cells.  A clean read has no tampered and no blank cells. *)

val is_clean : decode_result -> bool
(** No tampered and no blank cells. *)

val max_adjacent_heated : bool array -> int
(** Longest run of consecutive heated dots in an encoded pattern — the
    spreading guarantee of the paper is that this never exceeds 2
    (a [HU] cell followed by a [UH] cell). *)
