(** Minimal binary serialisation used for on-medium structures (sector
    headers, inodes, segment summaries, checkpoint regions).  All integers
    are fixed-width big-endian so that block images are deterministic and
    hash-stable. *)

module W : sig
  type t

  val create : ?capacity:int -> unit -> t
  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int -> unit
  val u64 : t -> int -> unit
  val i64 : t -> int -> unit

  val f64 : t -> float -> unit
  (** Full IEEE-754 bit pattern, big-endian (OCaml ints cannot carry all
      64 bits, so floats get their own codec). *)

  val str : t -> string -> unit
  (** Length-prefixed (u32) string. *)

  val raw : t -> string -> unit
  (** Raw bytes, no length prefix. *)

  val contents : t -> string
  val length : t -> int
end

module R : sig
  type t

  exception Truncated

  val of_string : ?off:int -> string -> t
  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int
  val u64 : t -> int
  val i64 : t -> int
  val f64 : t -> float
  val str : t -> string
  val raw : t -> int -> string
  val pos : t -> int
  val remaining : t -> int
end
