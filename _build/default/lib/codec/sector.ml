let payload_bytes = 512
let header_bytes = 16
let crc_bytes = 4
let framed_bytes = header_bytes + payload_bytes + crc_bytes (* 532 *)
let rs_code = Rs.make ~nparity:24
let physical_bytes = Rs.encoded_length rs_code framed_bytes (* 604 *)
let physical_bits = 8 * physical_bytes
let overhead_fraction = 1. -. (float_of_int payload_bytes /. float_of_int physical_bytes)
let magic = 0x5E20 (* "SERO" sector magic *)

type kind = Data | Inode | Summary | Checkpoint | Hash_meta

let kind_to_int = function
  | Data -> 0
  | Inode -> 1
  | Summary -> 2
  | Checkpoint -> 3
  | Hash_meta -> 4

let kind_of_int = function
  | 0 -> Some Data
  | 1 -> Some Inode
  | 2 -> Some Summary
  | 3 -> Some Checkpoint
  | 4 -> Some Hash_meta
  | _ -> None

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Data -> "data"
    | Inode -> "inode"
    | Summary -> "summary"
    | Checkpoint -> "checkpoint"
    | Hash_meta -> "hash-meta")

let encode ~pba ~kind ~generation payload =
  if String.length payload > payload_bytes then
    invalid_arg "Sector.encode: payload longer than 512 bytes";
  let w = Binio.W.create ~capacity:framed_bytes () in
  Binio.W.u16 w magic;
  Binio.W.u8 w (kind_to_int kind);
  Binio.W.u8 w 0 (* reserved *);
  Binio.W.u64 w pba;
  Binio.W.u32 w generation;
  Binio.W.raw w payload;
  if String.length payload < payload_bytes then
    Binio.W.raw w (String.make (payload_bytes - String.length payload) '\x00');
  let framed_no_crc = Binio.W.contents w in
  let crc = Crc32.string framed_no_crc in
  Binio.W.u32 w (Int32.to_int crc land 0xFFFFFFFF);
  Rs.encode_blocks rs_code (Binio.W.contents w)

type decoded = {
  pba : int;
  kind : kind;
  generation : int;
  payload : string;
  corrected_symbols : int;
}

type error = Uncorrectable | Bad_crc | Bad_header

let pp_error ppf e =
  Format.pp_print_string ppf
    (match e with
    | Uncorrectable -> "uncorrectable"
    | Bad_crc -> "bad-crc"
    | Bad_header -> "bad-header")

(* Count corrections by decoding slice-by-slice ourselves. *)
let decode image =
  if String.length image <> physical_bytes then Error Bad_header
  else begin
    let coded = Bytes.of_string image in
    let m = Rs.max_data rs_code and npar = Rs.nparity rs_code in
    let out = Buffer.create framed_bytes in
    let corrected = ref 0 and failed = ref false in
    let off = ref 0 and remaining = ref framed_bytes in
    while !remaining > 0 && not !failed do
      let take = min m !remaining in
      let cw = Bytes.sub coded !off (take + npar) in
      (match Rs.decode rs_code cw with
      | Rs.Ok_clean -> ()
      | Rs.Corrected n -> corrected := !corrected + n
      | Rs.Uncorrectable -> failed := true);
      Buffer.add_subbytes out cw 0 take;
      off := !off + take + npar;
      remaining := !remaining - take
    done;
    if !failed then Error Uncorrectable
    else begin
      let framed = Buffer.contents out in
      let body = String.sub framed 0 (framed_bytes - crc_bytes) in
      let r = Binio.R.of_string framed in
      match
        let m = Binio.R.u16 r in
        let kind_code = Binio.R.u8 r in
        let _reserved = Binio.R.u8 r in
        let pba = Binio.R.u64 r in
        let generation = Binio.R.u32 r in
        let payload = Binio.R.raw r payload_bytes in
        let crc = Binio.R.u32 r in
        (m, kind_code, pba, generation, payload, crc)
      with
      | exception Binio.R.Truncated -> Error Bad_header
      | m, kind_code, pba, generation, payload, crc ->
          if m <> magic then Error Bad_header
          else
            match kind_of_int kind_code with
            | None -> Error Bad_header
            | Some kind ->
                let expect = Int32.to_int (Crc32.string body) land 0xFFFFFFFF in
                if crc <> expect then Error Bad_crc
                else
                  Ok { pba; kind; generation; payload; corrected_symbols = !corrected }
    end
  end
