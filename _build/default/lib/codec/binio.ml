module W = struct
  type t = Buffer.t

  let create ?(capacity = 256) () = Buffer.create capacity
  let u8 t v = Buffer.add_char t (Char.chr (v land 0xFF))

  let u16 t v =
    u8 t (v lsr 8);
    u8 t v

  let u32 t v =
    u16 t (v lsr 16);
    u16 t v

  let u64 t v =
    u32 t (v lsr 32);
    u32 t v

  let i64 t v = u64 t (v land max_int lor if v < 0 then min_int else 0)

  let f64 t v =
    let bits = Int64.bits_of_float v in
    for i = 7 downto 0 do
      Buffer.add_char t
        (Char.chr
           (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF))
    done

  let raw t s = Buffer.add_string t s

  let str t s =
    u32 t (String.length s);
    raw t s

  let contents = Buffer.contents
  let length = Buffer.length
end

module R = struct
  type t = { s : string; mutable pos : int }

  exception Truncated

  let of_string ?(off = 0) s = { s; pos = off }

  let u8 t =
    if t.pos >= String.length t.s then raise Truncated;
    let v = Char.code t.s.[t.pos] in
    t.pos <- t.pos + 1;
    v

  let u16 t =
    let hi = u8 t in
    (hi lsl 8) lor u8 t

  let u32 t =
    let hi = u16 t in
    (hi lsl 16) lor u16 t

  let u64 t =
    let hi = u32 t in
    (hi lsl 32) lor u32 t

  let i64 = u64

  let f64 t =
    let bits = ref 0L in
    for _ = 0 to 7 do
      bits := Int64.logor (Int64.shift_left !bits 8) (Int64.of_int (u8 t))
    done;
    Int64.float_of_bits !bits

  let raw t n =
    if n < 0 || t.pos + n > String.length t.s then raise Truncated;
    let v = String.sub t.s t.pos n in
    t.pos <- t.pos + n;
    v

  let str t =
    let n = u32 t in
    raw t n

  let pos t = t.pos
  let remaining t = String.length t.s - t.pos
end
