(* Log/antilog tables for GF(256) generated once at start-up. *)

let exp_table = Array.make 512 0
let log_table = Array.make 256 0

let () =
  let x = ref 1 in
  for i = 0 to 254 do
    exp_table.(i) <- !x;
    log_table.(!x) <- i;
    x := !x lsl 1;
    if !x land 0x100 <> 0 then x := !x lxor 0x11D
  done;
  (* Duplicate so that exp (log a + log b) needs no reduction. *)
  for i = 255 to 511 do
    exp_table.(i) <- exp_table.(i - 255)
  done

let add a b = a lxor b
let exp i = exp_table.(((i mod 255) + 255) mod 255)

let log a =
  if a = 0 then invalid_arg "Gf256.log: log of zero";
  log_table.(a)

let mul a b = if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let inv a = if a = 0 then raise Division_by_zero else exp_table.(255 - log_table.(a))
let div a b = if b = 0 then raise Division_by_zero else mul a (inv b)

let rec pow a n =
  if n = 0 then 1
  else if a = 0 then 0
  else
    let half = pow a (n / 2) in
    let sq = mul half half in
    if n land 1 = 1 then mul sq a else sq

let poly_eval p x =
  Array.fold_left (fun acc c -> add (mul acc x) c) 0 p

let poly_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let out = Array.make (la + lb - 1) 0 in
    for i = 0 to la - 1 do
      for j = 0 to lb - 1 do
        out.(i + j) <- add out.(i + j) (mul a.(i) b.(j))
      done
    done;
    out
  end
