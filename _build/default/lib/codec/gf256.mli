(** Arithmetic in GF(2^8) with the primitive polynomial
    x^8 + x^4 + x^3 + x^2 + 1 ([0x11D]), as used by the Reed–Solomon
    sector code ({!Rs}). *)

val add : int -> int -> int
(** Addition = subtraction = XOR. *)

val mul : int -> int -> int
val div : int -> int -> int
(** @raise Division_by_zero if the divisor is 0. *)

val inv : int -> int
(** @raise Division_by_zero on 0. *)

val pow : int -> int -> int
(** [pow a n] for [n >= 0]; [pow 0 0 = 1]. *)

val exp : int -> int
(** [exp i] = alpha^i where alpha = 2 is the generator; [i] taken mod 255. *)

val log : int -> int
(** Discrete log base alpha. @raise Invalid_argument on 0. *)

val poly_eval : int array -> int -> int
(** [poly_eval p x] evaluates the polynomial with coefficients [p]
    (highest degree first) at [x], Horner style. *)

val poly_mul : int array -> int array -> int array
(** Product of two polynomials (highest degree first). *)
