(** Pure-OCaml SHA-256 (FIPS 180-4).

    The SERO device burns a SHA-256 digest of each heated line into the
    write-once area of the line's first block (paper, Section 3, "Heat a
    line").  The sealed build environment ships no crypto library, so the
    function is implemented here from the standard.  Test vectors from
    FIPS 180-4 and NIST CAVS are checked in the test suite. *)

type t
(** An immutable 256-bit digest. *)

val digest_bytes : bytes -> t
(** [digest_bytes b] is the SHA-256 digest of the whole of [b]. *)

val digest_string : string -> t
(** [digest_string s] is the SHA-256 digest of [s]. *)

val digest_concat : string list -> t
(** [digest_concat parts] hashes the concatenation of [parts] without
    building the intermediate string. *)

type ctx
(** Streaming context for incremental hashing. *)

val init : unit -> ctx
val feed_bytes : ctx -> bytes -> int -> int -> unit
(** [feed_bytes ctx b off len] absorbs [len] bytes of [b] at [off]. *)

val feed_string : ctx -> string -> unit
val finalize : ctx -> t
(** [finalize ctx] pads, produces the digest and invalidates [ctx]
    (further feeds raise [Invalid_argument]). *)

val to_raw : t -> string
(** 32-byte big-endian digest value. *)

val of_raw : string -> t
(** [of_raw s] reinterprets a 32-byte string as a digest.
    @raise Invalid_argument if [String.length s <> 32]. *)

val to_hex : t -> string
(** Lower-case hexadecimal rendering (64 chars). *)

val of_hex : string -> t
(** @raise Invalid_argument on malformed input. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Prints the first 8 hex digits followed by an ellipsis. *)

val pp_full : Format.formatter -> t -> unit

val size : int
(** Digest size in bytes (32). *)

val zero : t
(** The all-zero digest, used as a sentinel for "no hash recorded". *)
