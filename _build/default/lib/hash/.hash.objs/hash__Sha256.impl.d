lib/hash/sha256.ml: Array Bytes Char Format List String
