lib/hash/sha256.mli: Format
