(** E17 — media reliability vs. the sector ECC budget (a study the
    paper assumes away inside its "15% sector overhead" figure).

    Two fault models from the device substrate:

    - {b manufacturing dot defects}: each defective dot reads inverted.
      The Reed–Solomon code (24 parity symbols per 255-byte codeword)
      absorbs byte-error rates up to ~4.7%; since one flipped dot
      corrupts a whole byte symbol, the tolerable {e dot} defect rate is
      roughly 12/255/8 ≈ 0.6% — the sweep locates the cliff.
    - {b failed probe tips}: a dead tip turns every 32nd dot into noise,
      touching ~every 4th byte of a frame — far beyond any per-sector
      code.  The experiment shows the paper's implicit assumption that
      ECC covers tip faults does not hold: tip sparing/remapping is
      required (a finding, not a figure).

    Also checks that {!Sero.Device.classify_block} keeps the two fault
    classes apart from heated blocks (Section 3's bad-block concern). *)

type defect_row = {
  defect_rate : float;
  sectors : int;
  readable : int;
  mean_corrected : float;  (** RS symbols repaired per readable sector. *)
}

val defect_sweep : ?rates:float list -> ?sectors:int -> unit -> defect_row list

type tip_row = {
  failed_tips : int;
  sectors : int;
  readable : int;
  classified_bad : int;  (** Unreadable sectors classified [Bad_block]. *)
  classified_heated : int;  (** Misclassified as heated (should be 0). *)
}

val tip_sweep : ?max_failed:int -> ?sectors:int -> unit -> tip_row list

val print : Format.formatter -> unit
