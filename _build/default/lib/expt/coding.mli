(** E14 — write-once coding efficiency (Section 8, "Efficiency").

    Compares the space cost of the Manchester cell code against the
    Rivest–Shamir WOM code for metadata generations, and tabulates the
    wasted-space fraction of the hash block across line sizes. *)

type code_row = {
  code : string;
  bits_per_cell : float;
  generations : int;  (** Rewrites supported per cell group. *)
  tamper_evident : bool;
}

val codes : code_row list

val print : Format.formatter -> unit
