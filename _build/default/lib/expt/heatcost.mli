(** E8 — heat-a-line cost and space overhead vs line size 2^N.

    Section 8 ("Efficiency"): the hash block costs 1 of every 2^N
    blocks, so large N wastes little space but heats inflexibly large
    units; small N is flexible but pays overhead — and could use better
    write-once codes (E14).  This sweep heats one line at each N and
    reports burn latency, verify latency, and the overhead fraction. *)

type row = {
  n : int;  (** Line is 2^n blocks. *)
  line_blocks : int;
  heat_latency_s : float;
  verify_latency_s : float;
  space_overhead : float;  (** 1 / 2^n. *)
}

val sweep : ?ns:int list -> unit -> row list
val print : Format.formatter -> unit
