type row = {
  clustering : bool;
  in_place : bool;
  snapshots : int;
  heated_fraction : float;
  partially_heated : int;
  collateral_frozen : int;
  updates_blocked : int;
  relocated_blocks : int;
  cleaner_copies : int;
  fs_block_writes : int;
  write_amplification : float;
  wall_s : float;
  utilisation : float list;
}

let bimodality utils =
  match utils with
  | [] -> 1.
  | _ ->
      let extreme =
        List.length (List.filter (fun u -> u < 0.2 || u > 0.8) utils)
      in
      float_of_int extreme /. float_of_int (List.length utils)

let run_point ?(strategy = Lfs.Heat.Auto) ~clustering ~snapshots () =
  let device = Sero.Device.default_config ~n_blocks:8192 ~line_exp:3 () in
  let cfg = { Workload.Dbwork.default_config with Workload.Dbwork.snapshots } in
  let r = Workload.Dbwork.run ~strategy ~clustering ~device cfg in
  let s = r.Workload.Dbwork.fs_stats in
  let m = s.Lfs.Fs.metrics in
  let data_segments =
    s.Lfs.Fs.free_segments + s.Lfs.Fs.closed_segments + s.Lfs.Fs.heated_segments
  in
  let user_blocks =
    (m.Lfs.State.user_bytes_written + 511) / 512
  in
  {
    clustering;
    in_place = (strategy = Lfs.Heat.Never_relocate);
    snapshots;
    heated_fraction =
      float_of_int s.Lfs.Fs.heated_segments /. float_of_int (max 1 data_segments);
    partially_heated = s.Lfs.Fs.partially_heated_segments;
    collateral_frozen = m.Lfs.State.collateral_frozen;
    updates_blocked = r.Workload.Dbwork.updates_blocked;
    relocated_blocks = m.Lfs.State.heat_relocations;
    cleaner_copies = m.Lfs.State.cleaner_copies;
    fs_block_writes = m.Lfs.State.fs_block_writes;
    write_amplification =
      float_of_int m.Lfs.State.fs_block_writes /. float_of_int (max 1 user_blocks);
    wall_s = r.Workload.Dbwork.wall;
    utilisation = s.Lfs.Fs.live_utilisation;
  }

let sweep ?(snapshot_counts = [ 2; 4; 8; 16 ]) () =
  List.concat_map
    (fun snapshots ->
      [
        run_point ~clustering:true ~snapshots ();
        run_point ~clustering:false ~snapshots ();
        run_point ~strategy:Lfs.Heat.Never_relocate ~clustering:false
          ~snapshots ();
      ])
    snapshot_counts

let print ppf =
  Format.fprintf ppf
    "E9 — LFS under the DB-snapshot workload: clustering vs single log head@.";
  Format.fprintf ppf "%s@." (String.make 94 '-');
  Format.fprintf ppf
    "  %-6s %-6s %-9s %-9s %-8s %-11s %-8s %-10s %-9s %-7s %-8s@."
    "snaps" "clust" "in-place" "heated%" "partial" "collateral" "blocked"
    "relocated" "cleaner" "W-amp" "wall(s)";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "  %-6d %-6b %-9b %7.1f%% %-8d %-11d %-8d %-10d %-9d %-7.2f %-8.1f@."
        r.snapshots r.clustering r.in_place
        (100. *. r.heated_fraction)
        r.partially_heated r.collateral_frozen r.updates_blocked
        r.relocated_blocks r.cleaner_copies r.write_amplification r.wall_s)
    (sweep ());
  Format.fprintf ppf
    "paper: clustering lets lines be heated in the right place -- no copies,@.";
  Format.fprintf ppf
    "no partially-heated segments, no foreign blocks frozen.  Without it the@.";
  Format.fprintf ppf
    "choice is relocation copies (W-amp) or fragmentation + collateral.@."
