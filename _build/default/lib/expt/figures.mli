(** Regeneration of the paper's figures as text series (experiments
    E1–E6; see DESIGN.md).  Each function prints a self-describing
    table or ASCII rendering to the formatter. *)

val fig1 : Format.formatter -> unit
(** MFM read-back trace over up/down/heated dots: the heated dot's peak
    vanishes (Figure 1). *)

val fig2 : Format.formatter -> unit
(** The bit state-transition table, generated from the implementation
    and checked exhaustive (Figure 2). *)

val fig3 : Format.formatter -> unit
(** Layout dump of a real heated line on a simulated device: block 0
    shows Manchester HU/UH cells, data blocks show 0/1 (Figure 3). *)

val fig7 : Format.formatter -> unit
(** Perpendicular anisotropy vs annealing temperature for the paper's
    stack and the low-temperature engineered stack (Figure 7). *)

val fig8 : Format.formatter -> unit
(** Low-angle XRD, as-grown vs 700 °C annealed (Figure 8). *)

val fig9 : Format.formatter -> unit
(** High-angle XRD, as-grown vs 700 °C annealed (Figure 9). *)
