let hrule ppf = Format.fprintf ppf "%s@." (String.make 72 '-')

let ascii_series ppf ~width ~height ~label points =
  (* Minimal ASCII chart: [points] are (x, y); y is binned to rows. *)
  let ymin, ymax =
    List.fold_left
      (fun (lo, hi) (_, y) -> (Float.min lo y, Float.max hi y))
      (infinity, neg_infinity) points
  in
  let yspan = if ymax -. ymin <= 0. then 1. else ymax -. ymin in
  let n = List.length points in
  let grid = Array.make_matrix height width ' ' in
  List.iteri
    (fun i (_, y) ->
      let col = i * (width - 1) / max 1 (n - 1) in
      let row =
        height - 1 - int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1))
      in
      grid.(max 0 (min (height - 1) row)).(col) <- '*')
    points;
  Format.fprintf ppf "%s  (y: %.3g .. %.3g)@." label ymin ymax;
  Array.iter
    (fun row ->
      Format.fprintf ppf "  |%s|@." (String.init width (fun i -> row.(i))))
    grid

let fig1 ppf =
  Format.fprintf ppf "Figure 1 — MFM read-back over a dot row@.";
  hrule ppf;
  let g = Physics.Constants.dot_200nm in
  let c = Physics.Mfm.default_channel in
  let rng = Sim.Prng.create 17 in
  let dots =
    [| Physics.Mfm.Up; Physics.Mfm.Down; Physics.Mfm.Up; Physics.Mfm.Up;
       Physics.Mfm.Destroyed; Physics.Mfm.Up |]
  in
  Format.fprintf ppf
    "dots: 1 0 1 1 H 1   (H = heated/destroyed; expect its peak to vanish)@.";
  let trace = Physics.Mfm.trace c g ~rng ~dots ~samples_per_dot:8 in
  ascii_series ppf ~width:64 ~height:11 ~label:"read-back signal"
    (Array.to_list (Array.map (fun (x, y) -> (x, y)) trace));
  Format.fprintf ppf "peak sample over each dot:@.";
  Array.iteri
    (fun i d ->
      let s = Physics.Mfm.read_dot c g ~rng ~dots i in
      Format.fprintf ppf "  dot %d (%s): %+.3f@." i
        (match d with
        | Physics.Mfm.Up -> "1"
        | Physics.Mfm.Down -> "0"
        | Physics.Mfm.Destroyed -> "H")
        s)
    dots

let fig2 ppf =
  Format.fprintf ppf "Figure 2 — state transitions of one bit@.";
  hrule ppf;
  Format.fprintf ppf "%-8s %-8s %-8s@." "state" "op" "state'";
  List.iter
    (fun (s, op, s') ->
      Format.fprintf ppf "%-8s %-8s %-8s@."
        (Format.asprintf "%a" Pmedia.Dot.pp s)
        op
        (Format.asprintf "%a" Pmedia.Dot.pp s'))
    Pmedia.Dot.transition_table;
  Format.fprintf ppf
    "invariants: ewb always lands in H; nothing leaves H; mwb toggles 0/1@."

let fig3 ppf =
  Format.fprintf ppf
    "Figure 3 — medium layout of a heated line (2^N = 8 blocks)@.";
  hrule ppf;
  let dev = Sero.Device.create (Sero.Device.default_config ~n_blocks:16 ~line_exp:3 ()) in
  let lay = Sero.Device.layout dev in
  List.iteri
    (fun i pba ->
      match
        Sero.Device.write_block dev ~pba (Printf.sprintf "data block %d" i)
      with
      | Ok () -> ()
      | Error e ->
          Format.fprintf ppf "unexpected: %a@." Sero.Device.pp_write_error e)
    (Sero.Layout.data_blocks_of_line lay 0);
  (match Sero.Device.heat_line dev ~line:0 () with
  | Ok hash -> Format.fprintf ppf "burned hash: %a@." Hash.Sha256.pp_full hash
  | Error e -> Format.fprintf ppf "heat failed: %a@." Sero.Device.pp_heat_error e);
  let medium = Probe.Pdevice.medium (Sero.Device.pdevice dev) in
  let show_dots ppf first n =
    for d = first to first + n - 1 do
      Format.pp_print_string ppf
        (match Pmedia.Medium.get medium d with
        | Pmedia.Dot.Heated -> "H"
        | Pmedia.Dot.Magnetised Pmedia.Dot.Up -> "1"
        | Pmedia.Dot.Magnetised Pmedia.Dot.Down -> "0")
    done
  in
  let wo = Sero.Layout.wo_first_dot lay ~line:0 in
  Format.fprintf ppf "block 0 (hash, electrically written), first 32 cells:@.  ";
  for cell = 0 to 31 do
    let a = Pmedia.Medium.get medium (wo + (2 * cell))
    and b = Pmedia.Medium.get medium (wo + (2 * cell) + 1) in
    let s =
      match (Pmedia.Dot.is_heated a, Pmedia.Dot.is_heated b) with
      | true, false -> "HU"
      | false, true -> "UH"
      | false, false -> "UU"
      | true, true -> "HH"
    in
    Format.fprintf ppf "%s " s
  done;
  Format.fprintf ppf "@.";
  List.iter
    (fun pba ->
      Format.fprintf ppf "block %d (data, magnetic), first 64 dots:@.  %a@."
        pba
        (fun ppf () -> show_dots ppf (Sero.Layout.block_first_dot lay pba) 64)
        ())
    (List.filteri (fun i _ -> i < 2) (Sero.Layout.data_blocks_of_line lay 0));
  Format.fprintf ppf "verify: %a@." Sero.Tamper.pp_verdict
    (Sero.Device.verify_line dev ~line:0)

let fig7 ppf =
  Format.fprintf ppf
    "Figure 7 — perpendicular anisotropy vs annealing temperature@.";
  hrule ppf;
  let temps = [ 25.; 100.; 200.; 300.; 400.; 500.; 550.; 600.; 650.; 700. ] in
  let show m =
    Format.fprintf ppf "%s:@." m.Physics.Constants.label;
    Format.fprintf ppf "  %-10s %-12s@." "T (degC)" "K (kJ/m^3)";
    List.iter
      (fun (t, k) -> Format.fprintf ppf "  %-10.0f %-12.1f@." t k)
      (Physics.Anisotropy.figure7_sweep m ~temps_c:temps);
    Format.fprintf ppf "  half-anisotropy threshold: %.0f degC@."
      (Physics.Anisotropy.destruction_threshold_c m)
  in
  show Physics.Constants.co_pt;
  show Physics.Constants.co_pt_low_temp;
  Format.fprintf ppf
    "paper anchors: 80 kJ/m^3 maintained to 500 degC; dramatic drop above 600.@."

let xrd_figure ppf ~title ~scan_of ~peak_deg ~window =
  Format.fprintf ppf "%s@." title;
  hrule ppf;
  let m = Physics.Constants.co_pt in
  let show label anneal =
    let scan = scan_of m ~anneal_temp_c:anneal in
    ascii_series ppf ~width:64 ~height:10 ~label
      (List.map (fun p -> (p.Physics.Xrd.two_theta, log10 (1. +. p.Physics.Xrd.intensity))) scan);
    Format.fprintf ppf "  peak height above background near %.1f deg: %.1f@."
      peak_deg
      (Physics.Xrd.peak_amplitude scan ~near_deg:peak_deg ~window)
  in
  show "as grown" None;
  show "annealed 700 degC" (Some 700.)

let fig8 ppf =
  xrd_figure ppf
    ~title:
      "Figure 8 — low-angle XRD (superlattice peak, log10 intensity vs 2theta 2..14deg)"
    ~scan_of:Physics.Xrd.low_angle_scan
    ~peak_deg:(Physics.Xrd.superlattice_peak_deg Physics.Constants.co_pt)
    ~window:1.0;
  Format.fprintf ppf
    "paper: peak at ~8 deg from the 1.1 nm bilayer disappears after annealing@."

let fig9 ppf =
  xrd_figure ppf
    ~title:
      "Figure 9 — high-angle XRD (CoPt(111), log10 intensity vs 2theta 35..50deg)"
    ~scan_of:Physics.Xrd.high_angle_scan ~peak_deg:Physics.Xrd.copt_111_peak_deg
    ~window:1.5;
  Format.fprintf ppf
    "paper: sharp CoPt(111) reflection at 41.7 deg appears after annealing@."
