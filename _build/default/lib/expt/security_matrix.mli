(** E10 — the Section 5 security analysis as a generated matrix, plus
    the physical-addressing ablation for the splice attack. *)

val print : Format.formatter -> unit
