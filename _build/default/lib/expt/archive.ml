type venti_row = {
  eager_heat : bool;
  files : int;
  bytes : int;
  blocks : int;
  dedup_hits : int;
  lines_heated : int;
  restore_ok : bool;
  verify_ok : bool;
}

let fail fmt = Format.kasprintf failwith fmt
let ok_exn what = function Ok v -> v | Error e -> fail "%s: %s" what e

let sample_files =
  List.init 6 (fun i ->
      ( Printf.sprintf "doc-%d.txt" i,
        String.concat "\n"
          (List.init 40 (fun j ->
               Printf.sprintf "file %d line %02d: lorem ipsum dolor sit amet" i j))
      ))

let venti_run ~eager_heat =
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:1024 ~line_exp:3 ())
  in
  let v = Venti.create ~eager_heat dev in
  let snap = ok_exn "snapshot" (Venti.snapshot v ~label:"audit-1" sample_files) in
  let restored = ok_exn "restore" (Venti.restore v snap) in
  let restore_ok =
    List.length restored = List.length sample_files
    && List.for_all2
         (fun (n1, d1) (n2, d2) -> String.equal n1 n2 && String.equal d1 d2)
         sample_files restored
  in
  let verify_ok = Result.is_ok (Venti.verify_snapshot v snap) in
  let s = Venti.stats v in
  {
    eager_heat;
    files = List.length sample_files;
    bytes = s.Venti.bytes_stored;
    blocks = s.Venti.blocks_stored;
    dedup_hits = s.Venti.dedup_hits;
    lines_heated = s.Venti.lines_heated;
    restore_ok;
    verify_ok;
  }

type fossil_row = {
  inserts : int;
  nodes : int;
  sealed : int;
  depth : int;
  found_all : bool;
  sealed_verify_ok : bool;
}

let fossil_run ~inserts =
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:4096 ~line_exp:3 ())
  in
  let f = Fossil.create dev in
  for i = 0 to inserts - 1 do
    ok_exn "insert"
      (Fossil.insert f
         ~key:(Printf.sprintf "record-%04d" i)
         ~value:(Printf.sprintf "payload of record %04d" i))
  done;
  let found_all =
    List.for_all
      (fun i ->
        match Fossil.find f ~key:(Printf.sprintf "record-%04d" i) with
        | Ok [ v ] -> String.equal v (Printf.sprintf "payload of record %04d" i)
        | Ok _ | Error _ -> false)
      (List.init inserts (fun i -> i))
  in
  let verdicts = Fossil.verify f in
  let sealed_verify_ok =
    List.for_all
      (fun (_, v) ->
        match v with
        | Sero.Tamper.Intact -> true
        | Sero.Tamper.Not_heated | Sero.Tamper.Tampered _ -> false)
      verdicts
  in
  let s = Fossil.stats f in
  {
    inserts;
    nodes = s.Fossil.nodes;
    sealed = s.Fossil.sealed_nodes;
    depth = s.Fossil.depth;
    found_all;
    sealed_verify_ok;
  }

let print ppf =
  Format.fprintf ppf "E12 — archival structures on SERO (Section 4.2)@.";
  Format.fprintf ppf "%s@." (String.make 72 '-');
  Format.fprintf ppf "Venti-style content-addressed snapshots:@.";
  Format.fprintf ppf "  %-12s %-7s %-7s %-8s %-7s %-7s %-8s %-8s@." "eager-heat"
    "files" "bytes" "blocks" "dedup" "lines" "restore" "verify";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-12b %-7d %-7d %-8d %-7d %-7d %-8b %-8b@."
        r.eager_heat r.files r.bytes r.blocks r.dedup_hits r.lines_heated
        r.restore_ok r.verify_ok)
    [ venti_run ~eager_heat:true; venti_run ~eager_heat:false ];
  Format.fprintf ppf
    "  (eager: every filled line burned; lazy: only the root's line)@.";
  Format.fprintf ppf "Fossilised index:@.";
  Format.fprintf ppf "  %-9s %-7s %-8s %-7s %-10s %-12s@." "inserts" "nodes"
    "sealed" "depth" "found-all" "seal-verify";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-9d %-7d %-8d %-7d %-10b %-12b@." r.inserts
        r.nodes r.sealed r.depth r.found_all r.sealed_verify_ok)
    [ fossil_run ~inserts:50; fossil_run ~inserts:200; fossil_run ~inserts:600 ];
  Format.fprintf ppf
    "paper: a filled node is simply heated; no copy to a WORM needed.@."
