let print ppf =
  Format.fprintf ppf
    "E11 — snapshot scenario across storage technologies@.";
  Format.fprintf ppf "%s@." (String.make 120 '-');
  let sc = Baseline.Compare.default_scenario in
  Format.fprintf ppf
    "scenario: %d-block store, %d random writes + %d reads, %d snapshots \
     of %d blocks@."
    sc.Baseline.Compare.device_blocks sc.Baseline.Compare.live_writes
    sc.Baseline.Compare.live_reads sc.Baseline.Compare.snapshots
    sc.Baseline.Compare.snapshot_blocks;
  List.iter
    (fun o -> Format.fprintf ppf "%a@." Baseline.Compare.pp_outcome o)
    (Baseline.Compare.run_all sc);
  Format.fprintf ppf
    "paper: SERO combines WMRM performance with incremental, \
     fine-grained, tamper-evident freezing.@."
