(** E16 — reliability of the paper's erb protocol (a finding of this
    reproduction, not an experiment in the paper).

    The 5-step erb sequence declares a dot unheated when both of its
    verification reads succeed.  On a heated dot each magnetic read is
    random, so one round {e misses} with probability (1/2)² = 1/4, and
    k independent rounds with probability 4^-k.  Reading a burned
    4096-dot hash area (2048 heated dots) naively therefore produces
    phantom blank cells — spurious tamper verdicts on honest data.

    The study measures the per-dot miss rate against theory, the
    per-area false-alarm rate vs. cycle count, and the cost of the
    device's adaptive read (cheap first pass + hard re-probe of blank
    cells) against a uniformly hard read. *)

type miss_row = {
  cycles : int;
  measured_miss : float;  (** Monte-Carlo P(heated dot read as U). *)
  theory_miss : float;  (** 4^-cycles. *)
}

val miss_sweep : ?trials:int -> ?cycles_list:int list -> unit -> miss_row list

type area_row = {
  strategy : string;
  false_blank_areas : int;  (** Burned areas showing phantom blanks, out of [areas]. *)
  areas : int;
  mean_bitops : float;  (** Primitive ops per area read. *)
}

val area_comparison : ?areas:int -> unit -> area_row list
(** Naive 1-cycle, naive 8-cycle, and the adaptive (8 + 24 escalation)
    read over freshly burned hash areas. *)

val print : Format.formatter -> unit
