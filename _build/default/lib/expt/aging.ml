type sample = {
  at : float;
  ro_fraction : float;
  wmrm_blocks_left : int;
  heated_runs : int;
  heated_lines : int;
}

type life = {
  samples : sample list;
  records_written : int;
  records_lost : int;
  end_of_life_at : float option;
  fully_ro : bool;
  all_audits_intact : bool;
}

let record_bytes = 384
let classes = 3
let audit_every = 24 (* records per class between audit freezes *)
let arrival_period = 0.05 (* DES seconds between record arrivals *)
let sample_period = 2.0

let run ?(n_blocks = 2048) ?(clustering = true) ?(seed = 3) () =
  let dev =
    Sero.Device.create
      (let c = Sero.Device.default_config ~n_blocks ~line_exp:3 () in
       { c with Sero.Device.seed })
  in
  let policy = { Lfs.State.default_policy with Lfs.State.clustering } in
  let fs = Lfs.Fs.format ~policy dev in
  let rng = Sim.Prng.create seed in
  let des = Sim.Des.create () in
  let epoch = Array.make classes 0 in
  let since_audit = Array.make classes 0 in
  let written = ref 0 and lost = ref 0 in
  let eol = ref None and audits_ok = ref true in
  let samples = ref [] in
  let path k = Printf.sprintf "/class-%d.%d" k epoch.(k) in
  for k = 0 to classes - 1 do
    match Lfs.Fs.create fs ~heat_group:(k + 1) (path k) with
    | Ok () -> ()
    | Error e -> failwith e
  done;
  let note_eol t = if !eol = None then eol := Some (Sim.Des.now t) in
  let audit t k =
    match Lfs.Fs.heat fs (path k) with
    | Error _ -> note_eol t
    | Ok _ ->
        (match Lfs.Fs.verify fs (path k) with
        | Ok verdicts ->
            if
              not
                (List.for_all
                   (fun (_, v) ->
                     Sero.Tamper.equal_verdict v Sero.Tamper.Intact)
                   verdicts)
            then audits_ok := false
        | Error _ -> audits_ok := false);
        epoch.(k) <- epoch.(k) + 1;
        since_audit.(k) <- 0;
        (match Lfs.Fs.create fs ~heat_group:(k + 1) (path k) with
        | Ok () -> ()
        | Error _ -> note_eol t)
  in
  let rec arrival t =
    if !eol = None then begin
      let k = Sim.Prng.int rng classes in
      let payload =
        String.init record_bytes (fun i -> Char.chr (33 + ((i * 7) mod 90)))
      in
      (match Lfs.Fs.append fs (path k) payload with
      | Ok () ->
          incr written;
          since_audit.(k) <- since_audit.(k) + 1;
          if since_audit.(k) >= audit_every then audit t k
      | Error _ ->
          incr lost;
          note_eol t);
      if !eol = None then Sim.Des.schedule t ~delay:arrival_period arrival
    end
  in
  let rec sampler t =
    let s = Sero.Device.stats dev in
    samples :=
      {
        at = Sim.Des.now t;
        ro_fraction = s.Sero.Device.ro_fraction;
        wmrm_blocks_left = s.Sero.Device.wmrm_data_blocks_left;
        heated_runs = s.Sero.Device.heated_runs;
        heated_lines = s.Sero.Device.heated_lines;
      }
      :: !samples;
    if !eol = None then Sim.Des.schedule t ~delay:sample_period sampler
  in
  Sim.Des.schedule des ~delay:0. sampler;
  Sim.Des.schedule des ~delay:arrival_period arrival;
  Sim.Des.run des;
  (* One final sample at end of life. *)
  let s = Sero.Device.stats dev in
  samples :=
    {
      at = Sim.Des.now des;
      ro_fraction = s.Sero.Device.ro_fraction;
      wmrm_blocks_left = s.Sero.Device.wmrm_data_blocks_left;
      heated_runs = s.Sero.Device.heated_runs;
      heated_lines = s.Sero.Device.heated_lines;
    }
    :: !samples;
  {
    samples = List.rev !samples;
    records_written = !written;
    records_lost = !lost;
    end_of_life_at = !eol;
    fully_ro = Sero.Device.is_fully_ro dev;
    all_audits_intact = !audits_ok;
  }

let print ppf =
  Format.fprintf ppf "E15 — device lifetime: WMRM shrinks to read-only@.";
  Format.fprintf ppf "%s@." (String.make 78 '-');
  List.iter
    (fun clustering ->
      let life = run ~clustering () in
      Format.fprintf ppf "clustering=%b:@." clustering;
      Format.fprintf ppf "  %-10s %-8s %-12s %-8s %-8s %-12s@." "t (s)" "RO %"
        "WMRM blocks" "lines" "runs" "runs/lines";
      List.iter
        (fun s ->
          Format.fprintf ppf "  %-10.1f %6.1f%% %-12d %-8d %-8d %-12.2f@."
            s.at (100. *. s.ro_fraction) s.wmrm_blocks_left s.heated_lines
            s.heated_runs
            (if s.heated_lines = 0 then 0.
             else float_of_int s.heated_runs /. float_of_int s.heated_lines))
        life.samples;
      Format.fprintf ppf
        "  wrote %d records (%d refused at end of life); end of life at %s; \
         audits intact: %b@."
        life.records_written life.records_lost
        (match life.end_of_life_at with
        | Some t -> Printf.sprintf "t=%.1f s" t
        | None -> "never")
        life.all_audits_intact)
    [ true; false ];
  Format.fprintf ppf
    "paper: the WMRM area shrinks monotonically until the device is pure \
     read-only and can be decommissioned; clustering keeps the RO area in \
     few contiguous runs.@."
