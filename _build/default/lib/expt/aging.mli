(** E15 — device lifetime (Section 8, "Efficiency" / decommissioning).

    "Over the lifetime of the device, the read/write area gradually
    shrinks, and the read-only area grows, until the device has become
    a pure read-only device.  The medium can safely be decommissioned
    by the time all data has expired."

    A discrete-event simulation drives a SERO file system through its
    whole life: retention-class records arrive continuously (scheduled
    on the {!Sim.Des} clock), each class is audit-frozen periodically,
    and the run ends when the allocator cannot host new data.  The
    series reports the WMRM shrink curve, the fragmentation of the RO
    area under the clustering allocator, and the decommission point. *)

type sample = {
  at : float;  (** DES time, s. *)
  ro_fraction : float;
  wmrm_blocks_left : int;
  heated_runs : int;  (** RO-area fragmentation (fewer = better). *)
  heated_lines : int;
}

type life = {
  samples : sample list;  (** Chronological. *)
  records_written : int;
  records_lost : int;  (** Arrivals refused after the device filled. *)
  end_of_life_at : float option;  (** When writes first failed for space. *)
  fully_ro : bool;
  all_audits_intact : bool;
}

val run : ?n_blocks:int -> ?clustering:bool -> ?seed:int -> unit -> life
val print : Format.formatter -> unit
