(** E11 — SERO against the WORM technologies of Sections 1–2 under the
    introduction's snapshot scenario. *)

val print : Format.formatter -> unit
