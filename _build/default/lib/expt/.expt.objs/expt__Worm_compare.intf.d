lib/expt/worm_compare.mli: Format
