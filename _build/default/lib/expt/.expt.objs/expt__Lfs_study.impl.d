lib/expt/lfs_study.ml: Format Lfs List Sero String Workload
