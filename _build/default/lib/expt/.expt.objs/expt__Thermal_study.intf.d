lib/expt/thermal_study.mli: Format
