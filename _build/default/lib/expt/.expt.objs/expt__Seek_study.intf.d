lib/expt/seek_study.mli: Format
