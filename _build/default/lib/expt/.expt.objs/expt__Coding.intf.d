lib/expt/coding.mli: Format
