lib/expt/aging.mli: Format
