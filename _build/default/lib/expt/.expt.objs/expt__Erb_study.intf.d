lib/expt/erb_study.mli: Format
