lib/expt/archive.mli: Format
