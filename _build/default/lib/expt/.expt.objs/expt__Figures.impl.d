lib/expt/figures.ml: Array Float Format Hash List Physics Pmedia Printf Probe Sero Sim String
