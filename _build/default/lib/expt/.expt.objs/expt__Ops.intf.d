lib/expt/ops.mli: Format
