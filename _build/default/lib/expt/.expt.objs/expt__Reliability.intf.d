lib/expt/reliability.mli: Format
