lib/expt/security_matrix.ml: Format List Security String
