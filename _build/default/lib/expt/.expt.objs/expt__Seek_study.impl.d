lib/expt/seek_study.ml: Format List Probe Sero Sim String
