lib/expt/coding.ml: Array Codec Format List String
