lib/expt/figures.mli: Format
