lib/expt/aging.ml: Array Char Format Lfs List Printf Sero Sim String
