lib/expt/security_matrix.mli: Format
