lib/expt/ops.ml: Format List Pmedia Probe Sero String
