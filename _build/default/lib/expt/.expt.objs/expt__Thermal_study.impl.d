lib/expt/thermal_study.ml: Array Char Codec Float Format List Physics String
