lib/expt/lfs_study.mli: Format Lfs
