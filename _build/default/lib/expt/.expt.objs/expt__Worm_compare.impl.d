lib/expt/worm_compare.ml: Baseline Format List String
