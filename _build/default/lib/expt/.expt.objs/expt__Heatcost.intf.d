lib/expt/heatcost.mli: Format
