lib/expt/reliability.ml: Codec Format List Printf Probe Sero String
