lib/expt/heatcost.ml: Format List Printf Probe Sero String
