lib/expt/archive.ml: Format Fossil List Printf Result Sero String Venti
