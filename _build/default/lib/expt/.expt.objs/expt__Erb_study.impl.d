lib/expt/erb_study.ml: Array Codec Format List Pmedia Probe Sero String
