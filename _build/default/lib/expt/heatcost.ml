type row = {
  n : int;
  line_blocks : int;
  heat_latency_s : float;
  verify_latency_s : float;
  space_overhead : float;
}

let one n =
  let line_blocks = 1 lsl n in
  let dev =
    Sero.Device.create
      (Sero.Device.default_config ~n_blocks:(4 * line_blocks) ~line_exp:n ())
  in
  let lay = Sero.Device.layout dev in
  List.iteri
    (fun i pba ->
      match Sero.Device.write_block dev ~pba (Printf.sprintf "blk %d" i) with
      | Ok () -> ()
      | Error _ -> ())
    (Sero.Layout.data_blocks_of_line lay 1);
  let pdev = Sero.Device.pdevice dev in
  Probe.Pdevice.reset_ledger pdev;
  (match Sero.Device.heat_line dev ~line:1 () with
  | Ok _ -> ()
  | Error e ->
      failwith (Format.asprintf "heatcost: %a" Sero.Device.pp_heat_error e));
  let heat_latency_s = Probe.Pdevice.elapsed pdev in
  Probe.Pdevice.reset_ledger pdev;
  ignore (Sero.Device.verify_line dev ~line:1);
  let verify_latency_s = Probe.Pdevice.elapsed pdev in
  {
    n;
    line_blocks;
    heat_latency_s;
    verify_latency_s;
    space_overhead = Sero.Layout.space_overhead lay;
  }

let sweep ?(ns = [ 1; 2; 3; 4; 5; 6; 7 ]) () = List.map one ns

let print ppf =
  Format.fprintf ppf "E8 — heat-a-line cost and overhead vs N@.";
  Format.fprintf ppf "%s@." (String.make 72 '-');
  Format.fprintf ppf "  %-4s %-8s %-14s %-14s %-10s@." "N" "blocks"
    "heat (sim s)" "verify (sim s)" "overhead";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-4d %-8d %-14.4f %-14.4f %8.2f%%@." r.n
        r.line_blocks r.heat_latency_s r.verify_latency_s
        (100. *. r.space_overhead))
    (sweep ());
  Format.fprintf ppf
    "paper: overhead 1/2^N is negligible for large N at the price of \
     flexibility@."
