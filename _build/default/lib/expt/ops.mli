(** E7 — operation cost hierarchy.

    Section 3 claims the electrical read is "at least 5 times slower
    than mrb" (it is built from 5 magnetic operations) and the
    electrical write "slower than mwb because of the local heating
    process".  This experiment measures, on the simulated device, the
    per-bit primitive counts and simulated latencies of all four bit
    operations and the four sector operations built from them. *)

type row = {
  op : string;
  sim_latency_s : float;  (** Simulated time for one operation. *)
  primitive_ops : int;  (** mrb+mwb ops issued underneath. *)
  vs_mrb : float;  (** Latency ratio against mrb / mrs. *)
}

val bit_ops : unit -> row list
val sector_ops : unit -> row list
val print : Format.formatter -> unit
