let print ppf =
  Format.fprintf ppf "E10 — attack/outcome matrix (Section 5)@.";
  Format.fprintf ppf "%s@." (String.make 100 '-');
  let results = Security.Attacks.matrix () in
  Format.fprintf ppf "  %-34s %-40s %s@." "attack" "outcome" "paper";
  List.iter
    (fun (a, o) ->
      Format.fprintf ppf "  %-34s %-40s %s@."
        (Security.Attacks.label a)
        (Format.asprintf "%a" Security.Attacks.pp_outcome o)
        (Security.Attacks.paper_ref a))
    results;
  Format.fprintf ppf "every outcome in the class the paper predicts: %b@.@."
    (Security.Attacks.matrix_matches_paper results);
  Format.fprintf ppf "ablation — hashes at known physical addresses:@.";
  Format.fprintf ppf "  strict device:     %a@." Security.Attacks.pp_outcome
    (Security.Attacks.run_splice ~strict:true ());
  Format.fprintf ppf "  floating hashes:   %a@." Security.Attacks.pp_outcome
    (Security.Attacks.run_splice ~strict:false ());
  Format.fprintf ppf
    "paper: 'the device insists that hashes are written at known physical \
     addresses'@."
