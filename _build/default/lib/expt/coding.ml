type code_row = {
  code : string;
  bits_per_cell : float;
  generations : int;
  tamper_evident : bool;
}

let codes =
  [
    {
      code = "Manchester (paper)";
      bits_per_cell = Codec.Wom.manchester_rate;
      generations = 1;
      tamper_evident = true;
    };
    {
      code = "Rivest-Shamir WOM <2,3>";
      bits_per_cell = Codec.Wom.rate /. 2.;
      (* 2 bits stored twice in 3 cells: 2/3 bits/cell/generation *)
      generations = 2;
      tamper_evident = false;
    };
    {
      code = "raw write-once (1 bit/cell)";
      bits_per_cell = 1.;
      generations = 1;
      tamper_evident = false;
    };
  ]

let print ppf =
  Format.fprintf ppf "E14 — write-once coding efficiency (Section 8)@.";
  Format.fprintf ppf "%s@." (String.make 72 '-');
  Format.fprintf ppf "  %-28s %-15s %-13s %-14s@." "code" "bits/cell/gen"
    "generations" "tamper-evident";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-28s %-15.3f %-13d %-14b@." r.code
        r.bits_per_cell r.generations r.tamper_evident)
    codes;
  (* Demonstrate the two-generation property concretely. *)
  let c0 = Codec.Wom.encode_first 2 in
  (match Codec.Wom.write c0 1 with
  | Codec.Wom.Written c1 -> (
      Format.fprintf ppf
        "  WOM demo: wrote 2 then 1 into the same 3 cells: %d%d%d -> %d%d%d@."
        c0.(0) c0.(1) c0.(2) c1.(0) c1.(1) c1.(2);
      match Codec.Wom.write c1 3 with
      | Codec.Wom.Exhausted ->
          Format.fprintf ppf "  third write correctly refused (exhausted)@."
      | Codec.Wom.Written _ -> Format.fprintf ppf "  UNEXPECTED third write@.")
  | Codec.Wom.Exhausted -> Format.fprintf ppf "  UNEXPECTED exhaustion@.");
  Format.fprintf ppf "hash-block overhead vs line size (Manchester):@.";
  Format.fprintf ppf "  %-4s %-10s %-12s@." "N" "blocks" "overhead";
  List.iter
    (fun n ->
      Format.fprintf ppf "  %-4d %-10d %10.2f%%@." n (1 lsl n)
        (100. /. float_of_int (1 lsl n)))
    [ 1; 2; 3; 4; 5; 6; 8; 10 ];
  Format.fprintf ppf
    "paper: Manchester halves capacity but makes HH ill-formed (the \
     evidence); richer WOM codes trade that away for extra generations.@."
