(** E12 — the Section 4.2 archival structures exercised on SERO:
    Venti-style snapshots (heating only the root vs every line) and the
    fossilised index (insert/search/seal behaviour, tamper check). *)

type venti_row = {
  eager_heat : bool;
  files : int;
  bytes : int;
  blocks : int;
  dedup_hits : int;
  lines_heated : int;
  restore_ok : bool;
  verify_ok : bool;
}

val venti_run : eager_heat:bool -> venti_row

type fossil_row = {
  inserts : int;
  nodes : int;
  sealed : int;
  depth : int;
  found_all : bool;
  sealed_verify_ok : bool;
}

val fossil_run : inserts:int -> fossil_row
val print : Format.formatter -> unit
