type row = {
  op : string;
  sim_latency_s : float;
  primitive_ops : int;
  vs_mrb : float;
}

(* One tip, no striping: bit-op latencies are the raw cost model. *)
let bit_ops () =
  let medium = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:64 ~cols:64) in
  let ctx = Pmedia.Bitops.make medium in
  let costs = Probe.Timing.default_costs in
  let measure op f =
    Pmedia.Bitops.reset_counters ctx;
    f ();
    let c = Pmedia.Bitops.counters ctx in
    let prim = Pmedia.Bitops.primitive_ops c in
    let latency =
      (float_of_int prim *. costs.Probe.Timing.bit_time)
      +. (float_of_int c.Pmedia.Bitops.ewb *. costs.Probe.Timing.ewb_time)
    in
    { op; sim_latency_s = latency; primitive_ops = prim; vs_mrb = 0. }
  in
  let rows =
    [
      measure "mrb" (fun () -> ignore (Pmedia.Bitops.mrb ctx 0));
      measure "mwb" (fun () -> Pmedia.Bitops.mwb ctx 1 Pmedia.Dot.Up);
      measure "erb (1 cycle)" (fun () -> ignore (Pmedia.Bitops.erb ctx 2));
      measure "ewb" (fun () -> Pmedia.Bitops.ewb ctx 3);
    ]
  in
  let mrb_lat =
    match rows with r :: _ -> r.sim_latency_s | [] -> assert false
  in
  List.map (fun r -> { r with vs_mrb = r.sim_latency_s /. mrb_lat }) rows

let sector_ops () =
  let measure op f =
    let dev =
      Sero.Device.create (Sero.Device.default_config ~n_blocks:64 ~line_exp:3 ())
    in
    (* Prepare: fill line 1 and heat it so ers has something to read. *)
    List.iter
      (fun pba ->
        match Sero.Device.write_block dev ~pba "prep" with
        | Ok () -> ()
        | Error _ -> ())
      (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) 1);
    (match Sero.Device.heat_line dev ~line:1 () with
    | Ok _ -> ()
    | Error _ -> ());
    let pdev = Sero.Device.pdevice dev in
    Probe.Pdevice.reset_ledger pdev;
    Pmedia.Bitops.reset_counters (Probe.Pdevice.bitops pdev);
    f dev;
    {
      op;
      sim_latency_s = Probe.Pdevice.elapsed pdev;
      primitive_ops =
        Pmedia.Bitops.primitive_ops
          (Pmedia.Bitops.counters (Probe.Pdevice.bitops pdev));
      vs_mrb = 0.;
    }
  in
  let data_pba dev =
    List.hd (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) 2)
  in
  let rows =
    [
      measure "mrs (read sector)" (fun dev ->
          ignore (Sero.Device.read_block dev ~pba:(data_pba dev)));
      measure "mws (write sector)" (fun dev ->
          ignore (Sero.Device.write_block dev ~pba:(data_pba dev) "x"));
      measure "ers (read hash blk)" (fun dev ->
          ignore (Sero.Device.read_hash_block dev ~line:1));
      measure "heat line (2^3 blks)" (fun dev ->
          List.iter
            (fun pba -> ignore (Sero.Device.write_block dev ~pba "y"))
            (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) 2);
          ignore (Sero.Device.heat_line dev ~line:2 ()));
      measure "verify line" (fun dev ->
          ignore (Sero.Device.verify_line dev ~line:1));
    ]
  in
  let mrs_lat =
    match rows with r :: _ -> r.sim_latency_s | [] -> assert false
  in
  List.map (fun r -> { r with vs_mrb = r.sim_latency_s /. mrs_lat }) rows

let print ppf =
  Format.fprintf ppf "E7 — operation cost hierarchy@.";
  Format.fprintf ppf "%s@." (String.make 72 '-');
  let table title rows =
    Format.fprintf ppf "%s@." title;
    Format.fprintf ppf "  %-22s %14s %12s %10s@." "operation" "sim latency"
      "prim ops" "vs first";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-22s %12.3g s %12d %9.1fx@." r.op
          r.sim_latency_s r.primitive_ops r.vs_mrb)
      rows
  in
  table "bit operations (single tip):" (bit_ops ());
  table "sector/line operations (32-tip device):" (sector_ops ());
  Format.fprintf ppf
    "paper: erb is at least 5x mrb (5-op sequence); ewb slower than mwb@."
