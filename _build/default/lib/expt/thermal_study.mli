(** E13 — neighbour thermal damage (Section 7's reliability concern).

    Sweeps (a) the write-pulse peak temperature needed per material,
    (b) neighbour damage probability vs substrate heat-sinking quality
    (lateral decay length) and dot pitch, and (c) the benefit of
    Manchester spreading: expected collateral per burned hash area
    compared against a dense (unspread) encoding of the same bits. *)

type damage_row = {
  material : string;
  pitch_nm : float;
  decay_over_pitch : float;  (** Lateral decay length / pitch. *)
  peak_c : float;
  neighbour_c : float;
  target_destroyed : bool;
  neighbour_damage_p : float;
}

val damage_sweep : unit -> damage_row list

type spreading_row = {
  encoding : string;
  heated_dots : int;
  max_run : int;  (** Longest run of adjacent heated dots. *)
  worst_dot_risk : float;
      (** Max over surviving dots of the combined destruction
          probability from every pulse within the thermal decay length —
          clustered heat superposes, so long runs create hot spots. *)
  expected_collateral : float;
      (** Expected surviving dots destroyed across the hash area, under
          the same superposition. *)
}

val spreading : ?aggressive:bool -> unit -> spreading_row list
(** [aggressive] uses a poorly heat-sunk profile to make the effect
    visible; the default profile keeps both encodings near zero, which
    is itself the paper's point about substrate design. *)

val print : Format.formatter -> unit
