(** E9 — the Section 4.1 file-system study: does heat-affinity
    clustering keep performance high and the segment population bimodal
    as the device accumulates read-only lines?

    The DB-snapshot workload ({!Workload.Dbwork}) runs twice — once
    with per-group log heads (the paper's clustering policy) and once
    with a single log head (the ablation) — across a sweep of snapshot
    counts, i.e. of the final heated fraction. *)

type row = {
  clustering : bool;
  in_place : bool;  (** Heat strategy: in place ([Never_relocate]) vs auto. *)
  snapshots : int;
  heated_fraction : float;  (** Heated segments / data segments. *)
  partially_heated : int;
      (** Segments with some-but-not-all lines heated — the paper's
          bimodality failure mode. *)
  collateral_frozen : int;  (** Live foreign blocks frozen by in-place heats. *)
  updates_blocked : int;  (** Live updates refused against frozen pages. *)
  relocated_blocks : int;  (** Copies needed to line-align before heating. *)
  cleaner_copies : int;
  fs_block_writes : int;
  write_amplification : float;  (** Device block writes per user block. *)
  wall_s : float;  (** Simulated device time. *)
  utilisation : float list;  (** Live fraction of each closed segment. *)
}

val run_point :
  ?strategy:Lfs.Heat.strategy -> clustering:bool -> snapshots:int -> unit -> row

val sweep : ?snapshot_counts:int list -> unit -> row list
(** For each snapshot count: the clustering policy (heats land in
    place), the single-log-head ablation with relocation (pays copies),
    and the single-log-head ablation heating strictly in place (pays
    fragmentation and collateral) — the three corners of the paper's
    Section 4.1 trade-off. *)

val print : Format.formatter -> unit

val bimodality : float list -> float
(** Fraction of segments whose utilisation is extreme (< 0.2 or > 0.8) —
    1.0 is perfectly bimodal. *)
