type attack =
  | Mwb_hash
  | Mwb_data
  | Ewb_hash
  | Ewb_data
  | Splice
  | Rm_via_fs
  | Rm_raw_directory
  | Ln_via_fs
  | Copy_mask
  | Clear_directory
  | Bulk_erase
  | Overwrite_unheated

let all =
  [
    Mwb_hash; Mwb_data; Ewb_hash; Ewb_data; Splice; Rm_via_fs;
    Rm_raw_directory; Ln_via_fs; Copy_mask; Clear_directory; Bulk_erase;
    Overwrite_unheated;
  ]

let label = function
  | Mwb_hash -> "mwb hash"
  | Mwb_data -> "mwb inode/data"
  | Ewb_hash -> "ewb hash"
  | Ewb_data -> "ewb inode/data"
  | Splice -> "split/coalesce forgery"
  | Rm_via_fs -> "rm (file system)"
  | Rm_raw_directory -> "rm (raw directory edit)"
  | Ln_via_fs -> "ln (file system)"
  | Copy_mask -> "copy-and-mask"
  | Clear_directory -> "clear directory structure"
  | Bulk_erase -> "bulk eraser"
  | Overwrite_unheated -> "overwrite unheated file (control)"

let paper_ref = function
  | Mwb_hash -> "§5.1 bullet 1: magnetising a heated bit has no effect"
  | Mwb_data -> "§5.1 bullet 2: detected by the verify operation"
  | Ewb_hash -> "§5.1 bullet 3: UH/HU -> HH is an illegal code"
  | Ewb_data -> "§5.1 bullet 4: appears as a read error"
  | Splice -> "§5.1 bullet 4: prevented by hashes at known addresses"
  | Rm_via_fs -> "§5.2: rm implies writing the inode, tamper-evident"
  | Rm_raw_directory -> "§5.2: fsck scan recovers all heated files"
  | Ln_via_fs -> "§5.2: ln would increase the reference count"
  | Copy_mask -> "§5.2: addresses in the hash distinguish copies"
  | Clear_directory -> "§5.2: scan of the medium recovers heated files"
  | Bulk_erase -> "§5.2: electrically written information survives"
  | Overwrite_unheated -> "§5.1: unheated files are trivial to attack"

type outcome =
  | Refused of string
  | Ineffective of string
  | Detected of string
  | Undetected of string

let pp_outcome ppf = function
  | Refused s -> Format.fprintf ppf "refused (%s)" s
  | Ineffective s -> Format.fprintf ppf "ineffective (%s)" s
  | Detected s -> Format.fprintf ppf "DETECTED (%s)" s
  | Undetected s -> Format.fprintf ppf "UNDETECTED (%s)" s

let expected = function
  | Mwb_hash -> `Ineffective
  | Mwb_data | Ewb_hash | Ewb_data | Splice | Copy_mask | Clear_directory
  | Bulk_erase | Rm_raw_directory ->
      `Detected
  | Rm_via_fs | Ln_via_fs -> `Refused
  | Overwrite_unheated -> `Undetected

(* {1 The environment} *)

type env = {
  dev : Sero.Device.t;
  fs : Lfs.Fs.t;
  target : string;
  target_ino : int;
  target_content : string;
  target_lines : int list;
  decoy : string;
}

let fail fmt = Format.kasprintf failwith fmt
let ok_exn what = function Ok v -> v | Error e -> fail "%s: %s" what e

let make_env ?(seed = 42) ?(strict = true) () =
  let config = Sero.Device.default_config ~n_blocks:1024 ~line_exp:3 () in
  let dev =
    Sero.Device.create { config with Sero.Device.seed; strict_hash_locations = strict }
  in
  let fs = Lfs.Fs.format dev in
  ok_exn "mkdir" (Lfs.Fs.mkdir fs "/records");
  let target = "/records/ledger-2007" in
  ok_exn "create" (Lfs.Fs.create fs ~heat_group:1 target);
  let content =
    String.concat "\n"
      (List.init 160 (fun i ->
           Printf.sprintf "txn %05d: amount %d, counterparty %d" i
             ((i * 7919) mod 10000) ((i * 104729) mod 997)))
  in
  ok_exn "write" (Lfs.Fs.write_file fs target ~offset:0 content);
  let decoy = "/records/workpad" in
  ok_exn "create decoy" (Lfs.Fs.create fs decoy);
  ok_exn "write decoy" (Lfs.Fs.write_file fs decoy ~offset:0 (String.make 2048 'w'));
  let _ = ok_exn "heat" (Lfs.Fs.heat fs target) in
  Lfs.Fs.sync fs;
  let st = Lfs.Fs.state fs in
  let target_ino =
    match Lfs.Dirops.lookup st target with
    | Some (ino, _) -> ino
    | None -> fail "target vanished"
  in
  {
    dev;
    fs;
    target;
    target_ino;
    target_content = content;
    target_lines = Lfs.Heat.file_lines st ~ino:target_ino;
    decoy;
  }

(* The auditor: verify every line of the target; if any shows evidence,
   the attack is detected.  If all are intact, check whether the record
   is still the original. *)
let audit env ~landed =
  let verdicts =
    List.map (fun line -> Sero.Device.verify_line env.dev ~line) env.target_lines
  in
  let evidence =
    List.filter_map
      (function
        | Sero.Tamper.Tampered evs -> Some evs
        | Sero.Tamper.Intact | Sero.Tamper.Not_heated -> None)
      verdicts
  in
  if evidence <> [] then
    Detected
      (Format.asprintf "verify: %a" Sero.Tamper.pp_verdict
         (Sero.Tamper.Tampered (List.concat evidence)))
  else begin
    match Lfs.Fs.read_file env.fs env.target with
    | Ok content when String.equal content env.target_content ->
        Ineffective (if landed then "data unchanged, no evidence" else "no change")
    | Ok _ -> Undetected "content altered yet every line verifies intact"
    | Error _ -> Undetected "record unreadable yet no line shows evidence"
  end

let first_heated_line env = List.hd env.target_lines

let a_data_pba env =
  (* A data block of the target's middle heated line. *)
  let lay = Sero.Device.layout env.dev in
  let line = List.nth env.target_lines (List.length env.target_lines / 2) in
  List.nth (Sero.Layout.data_blocks_of_line lay line) 2

let run_mwb_hash env =
  let lay = Sero.Device.layout env.dev in
  let pba = Sero.Layout.hash_block_of_line lay (first_heated_line env) in
  Sero.Device.unsafe_write_block env.dev ~pba (String.make 512 '\xFF');
  audit env ~landed:true

let run_mwb_data env =
  Sero.Device.unsafe_write_block env.dev ~pba:(a_data_pba env)
    "txn 00002: amount 0, counterparty 0 (rewritten history)";
  audit env ~landed:true

let run_ewb_hash env =
  let lay = Sero.Device.layout env.dev in
  let dot = Sero.Layout.wo_first_dot lay ~line:(first_heated_line env) in
  Sero.Device.unsafe_heat_dots env.dev ~dot ~n:64;
  audit env ~landed:true

let run_ewb_data env =
  let lay = Sero.Device.layout env.dev in
  let dot = Sero.Layout.block_first_dot lay (a_data_pba env) in
  Sero.Device.unsafe_heat_dots env.dev ~dot ~n:512;
  audit env ~landed:true

let run_splice_on env =
  (* Burn a forged hash into data block dp of a heated line, covering
     the tail dp+1.. of that line, then present the tail as a genuine
     protected region starting at dp. *)
  let lay = Sero.Device.layout env.dev in
  let line = List.nth env.target_lines (List.length env.target_lines / 2) in
  let blocks = Sero.Layout.data_blocks_of_line lay line in
  let dp = List.nth blocks 1 in
  let tail = List.filter (fun pba -> pba > dp) blocks in
  Sero.Device.unsafe_forge_burn env.dev ~hash_pba:dp ~data_pbas:tail
    ~claim_line:line;
  match Sero.Device.verify_region env.dev ~hash_pba:dp ~data_pbas:tail with
  | Sero.Tamper.Intact ->
      Undetected "forged sub-file verifies as genuine"
  | Sero.Tamper.Tampered _ ->
      Detected "forged hash rejected: not at a known physical address"
  | Sero.Tamper.Not_heated -> Detected "forged burn not even readable"

let run_rm_via_fs env =
  match Lfs.Fs.unlink env.fs env.target with
  | Error e -> Refused e
  | Ok () -> audit env ~landed:true

let run_ln_via_fs env =
  match Lfs.Fs.link env.fs env.target "/records/alias" with
  | Error e -> Refused e
  | Ok () -> audit env ~landed:true

let scrub_directory env paths =
  (* Overwrite the directory files' data blocks with garbage frames on
     the raw device (the directories are not heated). *)
  let st = Lfs.Fs.state env.fs in
  List.iter
    (fun path ->
      match Lfs.Dirops.lookup st path with
      | Some (ino, Lfs.Enc.Directory) ->
          let ptrs = Lfs.File.pointers st ino in
          Array.iter
            (fun pba ->
              if pba <> 0 then
                Sero.Device.unsafe_write_block env.dev ~pba
                  (String.make 512 '\x00'))
            ptrs
      | Some _ | None -> ())
    paths

(* After an offline attack the auditor remounts and, failing that or
   failing to find the record, falls back to the forensic scan. *)
let audit_availability env =
  let recovered () =
    let report = Lfs.Fsck.run env.dev in
    let found =
      List.find_opt
        (fun r -> r.Lfs.Fsck.r_ino = env.target_ino && r.Lfs.Fsck.r_complete)
        report.Lfs.Fsck.recovered_files
    in
    match found with
    | Some r ->
        let expected_digest = Hash.Sha256.digest_string env.target_content in
        if
          match r.Lfs.Fsck.r_content_sha256 with
          | Some d -> Hash.Sha256.equal d expected_digest
          | None -> false
        then
          Detected
            "record hidden, but the medium scan recovered it bit-exact"
        else Detected "record hidden; scan recovered a damaged copy (evidence)"
    | None ->
        if report.Lfs.Fsck.heated_tampered <> [] then
          Detected "record destroyed, but heated lines show tamper evidence"
        else Undetected "record gone without trace"
  in
  match Lfs.Fs.mount env.dev with
  | Error _ -> recovered ()
  | Ok fs2 -> (
      match Lfs.Fs.read_file fs2 env.target with
      | Ok content when String.equal content env.target_content ->
          Ineffective "record still reachable and intact"
      | Ok _ | Error _ -> recovered ())

let run_rm_raw_directory env =
  Lfs.Fs.sync env.fs;
  scrub_directory env [ "/records" ];
  audit_availability env

let run_clear_directory env =
  Lfs.Fs.sync env.fs;
  scrub_directory env [ "/"; "/records" ];
  (* Also smash the checkpoints so no mount is possible at all. *)
  let st = Lfs.Fs.state env.fs in
  let lay = Sero.Device.layout env.dev in
  let cp_lines = 2 * st.Lfs.State.policy.Lfs.State.segment_lines in
  for line = 0 to cp_lines - 1 do
    List.iter
      (fun pba ->
        Sero.Device.unsafe_write_block env.dev ~pba (String.make 512 '\x00'))
      (Sero.Layout.data_blocks_of_line lay line)
  done;
  audit_availability env

let run_copy_mask env =
  (* Copy the target's raw frames into free lines and check whether the
     copy could pass as the original. *)
  let lay = Sero.Device.layout env.dev in
  let st = Lfs.Fs.state env.fs in
  let src = Lfs.Heat.file_lines st ~ino:env.target_ino in
  let n_lines = Sero.Layout.n_lines lay in
  let dst_first = n_lines - List.length src - 1 in
  let copied_ok = ref 0 and distinguishable = ref 0 in
  List.iteri
    (fun i line ->
      let dst_line = dst_first + i in
      List.iter2
        (fun src_pba dst_pba ->
          let image = Sero.Device.unsafe_read_raw env.dev ~pba:src_pba in
          Sero.Device.unsafe_write_raw env.dev ~pba:dst_pba image;
          match Sero.Device.read_block env.dev ~pba:dst_pba with
          | Ok _ -> incr copied_ok
          | Error (Sero.Device.Wrong_location _) -> incr distinguishable
          | Error _ -> incr distinguishable)
        (Sero.Layout.data_blocks_of_line lay line)
        (Sero.Layout.data_blocks_of_line lay dst_line))
    src;
  if !copied_ok = 0 then
    Detected
      (Printf.sprintf
         "all %d copied blocks carry their original address (distinguishable)"
         !distinguishable)
  else Undetected "some copied blocks pass as originals"

let run_bulk_erase env =
  Lfs.Fs.sync env.fs;
  Sero.Device.unsafe_magnetic_wipe env.dev;
  Sero.Device.refresh_heated_cache env.dev;
  let report = Lfs.Fsck.run env.dev in
  if report.Lfs.Fsck.heated_tampered <> [] then
    Detected
      (Printf.sprintf
         "magnetic data gone, but %d burned lines survive as evidence"
         (List.length report.Lfs.Fsck.heated_tampered))
  else if report.Lfs.Fsck.heated_intact > 0 then
    Detected "burned hashes survive the eraser"
  else Undetected "no trace left"

let run_overwrite_unheated env =
  match Lfs.Fs.write_file env.fs env.decoy ~offset:0 (String.make 2048 'X') with
  | Error e -> Refused e
  | Ok () -> (
      match Lfs.Fs.read_file env.fs env.decoy with
      | Ok c when String.for_all (fun ch -> ch = 'X') c ->
          Undetected "unheated file rewritten without trace"
      | Ok _ | Error _ -> Ineffective "overwrite did not land")

let run_splice ?seed ~strict () =
  let env = make_env ?seed ~strict () in
  run_splice_on env

let run ?seed attack =
  let env = make_env ?seed () in
  match attack with
  | Mwb_hash -> run_mwb_hash env
  | Mwb_data -> run_mwb_data env
  | Ewb_hash -> run_ewb_hash env
  | Ewb_data -> run_ewb_data env
  | Splice -> run_splice_on env
  | Rm_via_fs -> run_rm_via_fs env
  | Rm_raw_directory -> run_rm_raw_directory env
  | Ln_via_fs -> run_ln_via_fs env
  | Copy_mask -> run_copy_mask env
  | Clear_directory -> run_clear_directory env
  | Bulk_erase -> run_bulk_erase env
  | Overwrite_unheated -> run_overwrite_unheated env

let matrix ?seed () = List.map (fun a -> (a, run ?seed a)) all

let matrix_matches_paper results =
  List.for_all
    (fun (a, outcome) ->
      match (expected a, outcome) with
      | `Refused, Refused _
      | `Ineffective, Ineffective _
      | `Detected, Detected _
      | `Undetected, Undetected _ ->
          true
      | _ -> false)
    results
