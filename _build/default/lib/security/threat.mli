(** The threat model of Section 5 (after Hsu & Ong and Hasan et al.),
    encoded as data so that each attack in {!Attacks} declares which
    capabilities it exercises and the matrix can be read against the
    model. *)

type capability =
  | Fs_access  (** Root on every host: can issue any file-system call. *)
  | Device_access
      (** Can detach the device and drive it raw from a laptop: any
          magnetic or electrical operation at any address. *)
  | Knows_formats
      (** Knows every on-medium format and can compute hashes — no
          security through obscurity. *)
  | Bulk_eraser  (** Can degauss the whole medium. *)

type goal =
  | Destroy_record  (** Make a stored record unreadable. *)
  | Alter_record  (** Change a stored record's contents. *)
  | Mask_record  (** Hide a record behind a copy or index games. *)
  | Erase_history  (** Remove all trace that the record existed. *)

type constraint_ =
  | No_physical_destruction
      (** "The attacker would not like to draw attention to his actions,
          for instance by removing or physically destroying the storage
          system" — visible vandalism is out of scope. *)
  | Limited_offline_time
      (** The device may only disappear briefly (laptop session). *)

val attacker_capabilities : capability list
(** The powerful-insider attacker has all four capabilities. *)

val attacker_constraints : constraint_ list

val pp_capability : Format.formatter -> capability -> unit
val pp_goal : Format.formatter -> goal -> unit
val pp_constraint : Format.formatter -> constraint_ -> unit
