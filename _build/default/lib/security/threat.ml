type capability = Fs_access | Device_access | Knows_formats | Bulk_eraser
type goal = Destroy_record | Alter_record | Mask_record | Erase_history
type constraint_ = No_physical_destruction | Limited_offline_time

let attacker_capabilities =
  [ Fs_access; Device_access; Knows_formats; Bulk_eraser ]

let attacker_constraints = [ No_physical_destruction; Limited_offline_time ]

let pp_capability ppf c =
  Format.pp_print_string ppf
    (match c with
    | Fs_access -> "root file-system access"
    | Device_access -> "raw device access"
    | Knows_formats -> "knows all on-medium formats"
    | Bulk_eraser -> "bulk eraser")

let pp_goal ppf g =
  Format.pp_print_string ppf
    (match g with
    | Destroy_record -> "destroy a record"
    | Alter_record -> "alter a record"
    | Mask_record -> "mask a record"
    | Erase_history -> "erase all history")

let pp_constraint ppf c =
  Format.pp_print_string ppf
    (match c with
    | No_physical_destruction -> "no visible physical destruction"
    | Limited_offline_time -> "device offline only briefly")
