lib/security/attacks.mli: Format
