lib/security/attacks.ml: Array Format Hash Lfs List Printf Sero String
