lib/security/threat.mli: Format
