lib/security/threat.ml: Format
