(** Executable version of the Section 5 security analysis.

    Each attack is run against a freshly built environment: a SERO
    device with a mounted LFS holding one {e heated} target file (the
    record the attacker "regrets") plus ordinary unheated files.  The
    attack mutates the system through the honest API or the raw device
    surface, and the oracle then decides the outcome by doing exactly
    what an auditor would: verify the file, and if it is gone, scan the
    medium. *)

type attack =
  | Mwb_hash  (** Magnetically rewrite the burned hash area (§5.1 bullet 1). *)
  | Mwb_data  (** Magnetically rewrite a heated data block (§5.1 bullet 2). *)
  | Ewb_hash  (** Heat extra dots of the burned hash (§5.1 bullet 3). *)
  | Ewb_data  (** Heat dots inside a heated data block (§5.1 bullet 4a). *)
  | Splice
      (** Forge an interior hash + inode to split the file (§5.1 bullet
          4b).  Parameterised by the device's location discipline via
          {!run_splice}. *)
  | Rm_via_fs  (** rm through the file system (§5.2). *)
  | Rm_raw_directory  (** Scrub the directory entry on the raw device. *)
  | Ln_via_fs  (** Hard-link games on the heated file (§5.2). *)
  | Copy_mask  (** Copy the file elsewhere and present the copy (§5.2). *)
  | Clear_directory  (** Destroy the whole directory tree (§5.2). *)
  | Bulk_erase  (** Degauss the medium (§5.2). *)
  | Overwrite_unheated
      (** Control: attack a file that was never heated — the paper
          explicitly scopes these out as "trivial to attack". *)

val all : attack list
val label : attack -> string
val paper_ref : attack -> string
(** The paper passage this attack executes. *)

type outcome =
  | Refused of string  (** The honest API would not even perform it. *)
  | Ineffective of string
      (** Physics absorbed the attack; data intact, verify clean. *)
  | Detected of string  (** The attack landed but left evidence. *)
  | Undetected of string  (** The attack landed and no evidence remains. *)

val pp_outcome : Format.formatter -> outcome -> unit

val expected : attack -> [ `Refused | `Ineffective | `Detected | `Undetected ]
(** The verdict the paper's analysis predicts. *)

val run : ?seed:int -> attack -> outcome
(** Build a fresh environment, execute the attack, judge it. *)

val run_splice : ?seed:int -> strict:bool -> unit -> outcome
(** The splice attack against a device with ([strict = true]) or
    without the known-physical-address discipline — the E10 ablation:
    strict detects, non-strict is fooled. *)

val matrix : ?seed:int -> unit -> (attack * outcome) list
(** Run every attack in {!all} on its own fresh environment. *)

val matrix_matches_paper : (attack * outcome) list -> bool
(** Does every outcome fall in the class the paper predicts? *)
