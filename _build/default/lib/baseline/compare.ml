type scenario = {
  device_blocks : int;
  live_writes : int;
  live_reads : int;
  snapshots : int;
  snapshot_blocks : int;
}

let default_scenario =
  {
    device_blocks = 100_000;
    live_writes = 2000;
    live_reads = 2000;
    snapshots = 8;
    snapshot_blocks = 64;
  }

type outcome = {
  tech : Tech.tech;
  total_s : float;
  snapshot_latency_s : float;
  frozen_blocks : int;
  collateral_blocks : int;
  writable_left : int;
  snapshots_frozen : int;
  attack : Tech.attack_result;
}

(* The scenario interleaves: 1/snapshots of the live traffic, then one
   snapshot freeze, repeated.  Random IO pays a seek each op (worst
   case for tape, irrelevant for disk-class devices at this scale). *)
let run_one sc tech =
  let p = Tech.params tech in
  let time = ref 0. in
  let frozen = ref 0 in
  let collateral = ref 0 in
  let freezes_done = ref 0 in
  let freeze_latency = ref 0. in
  let can_freeze = p.Tech.freeze_granularity > 0 in
  let per_phase_writes = sc.live_writes / sc.snapshots in
  let per_phase_reads = sc.live_reads / sc.snapshots in
  for snap = 0 to sc.snapshots - 1 do
    (* Live traffic.  On a non-WMRM medium (optical), every update
       burns a new block: account it as a write plus wasted space. *)
    time :=
      !time
      +. (float_of_int per_phase_writes *. (p.Tech.seek_s +. p.Tech.write_s))
      +. (float_of_int per_phase_reads *. (p.Tech.seek_s +. p.Tech.read_s));
    (* Freeze one snapshot. *)
    if can_freeze then begin
      let incremental_ok = p.Tech.incremental_freeze || !freezes_done = 0 in
      if incremental_ok then begin
        let t0 = !time in
        (* Copy-based freeze (optical): write the snapshot to the WORM
           area first. *)
        time :=
          !time +. p.Tech.freeze_fixed_s
          +. (float_of_int sc.snapshot_blocks *. p.Tech.freeze_per_block_s);
        let unit_blocks =
          if p.Tech.freeze_granularity = max_int then sc.device_blocks
          else max sc.snapshot_blocks p.Tech.freeze_granularity
        in
        let unit_blocks = min unit_blocks sc.device_blocks in
        frozen := min sc.device_blocks (!frozen + unit_blocks);
        collateral := !collateral + (unit_blocks - sc.snapshot_blocks);
        incr freezes_done;
        freeze_latency := !freeze_latency +. (!time -. t0)
      end
    end;
    ignore snap
  done;
  {
    tech;
    total_s = !time;
    snapshot_latency_s =
      (if !freezes_done = 0 then Float.nan
       else !freeze_latency /. float_of_int !freezes_done);
    frozen_blocks = !frozen;
    collateral_blocks = !collateral;
    writable_left =
      (if p.Tech.wmrm_before_freeze then sc.device_blocks - !frozen else 0);
    snapshots_frozen = !freezes_done;
    attack = p.Tech.frozen_attack;
  }

let run_all sc = List.map (run_one sc) Tech.all

let pp_outcome ppf o =
  Format.fprintf ppf
    "%-22s total %9.2f s | freeze %8.4f s | frozen %7d (collateral %7d) | \
     writable left %7d | snapshots frozen %d | rewrite %a"
    (Tech.label o.tech) o.total_s o.snapshot_latency_s o.frozen_blocks
    o.collateral_blocks o.writable_left o.snapshots_frozen
    Tech.pp_attack o.attack
