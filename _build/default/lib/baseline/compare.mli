(** The snapshot scenario of the introduction, run across all
    technologies: a live store takes periodic audit snapshots that must
    become immutable, while random reads and writes continue.

    For each technology the scenario measures what the paper argues
    qualitatively: plain disks and software WORM give performance but no
    real evidence; optical WORM gives evidence but neither WMRM use nor
    speed; cartridge flags and fuses freeze far more than was asked
    (collateral); SERO freezes exactly the snapshot, keeps serving
    random IO, and detects rewrites. *)

type scenario = {
  device_blocks : int;
  live_writes : int;  (** Random 512-byte updates over the live area. *)
  live_reads : int;
  snapshots : int;
  snapshot_blocks : int;  (** Size of each snapshot. *)
}

val default_scenario : scenario
(** 100k blocks, 2000 writes + 2000 reads, 8 snapshots of 64 blocks. *)

type outcome = {
  tech : Tech.tech;
  total_s : float;  (** Simulated time for the whole scenario. *)
  snapshot_latency_s : float;  (** Mean time to freeze one snapshot. *)
  frozen_blocks : int;  (** Actually frozen, including collateral. *)
  collateral_blocks : int;  (** Frozen beyond the requested snapshots. *)
  writable_left : int;  (** WMRM blocks still usable afterwards. *)
  snapshots_frozen : int;  (** Snapshots that could be frozen at all. *)
  attack : Tech.attack_result;
}

val run_one : scenario -> Tech.tech -> outcome
val run_all : scenario -> outcome list
val pp_outcome : Format.formatter -> outcome -> unit
