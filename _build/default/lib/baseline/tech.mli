(** The storage technologies the paper positions SERO against
    (Sections 1 and 2): plain disk, software WORM, LTO-3 tape flags,
    optical WORM jukeboxes and the IBM fuse-platter disk.

    Each is reduced to the parameters that matter for the comparison:
    access performance, freeze semantics (granularity, latency,
    incrementality) and what happens when a powerful insider rewrites
    frozen data.  Absolute numbers are order-of-magnitude from the
    technologies' data sheets; every experiment reports ratios and
    capability differences, not absolute throughput. *)

type tech =
  | Hdd
  | Soft_worm  (** Disk with driver/firmware write blocking (VTL class). *)
  | Tape_lto3  (** Cartridge-memory read-only flag (IBM patent 7,193,803). *)
  | Optical_worm  (** Write-once discs in a jukebox. *)
  | Fuse_platter  (** IBM patent 6,879,454: blowable fuse per platter. *)
  | Sero_probe  (** This paper's device. *)

val all : tech list
val label : tech -> string

type attack_result =
  | Rewrite_blocked  (** The hardware physically cannot rewrite. *)
  | Rewrite_detected  (** Rewrite lands but leaves evidence. *)
  | Rewrite_undetected  (** Rewrite lands and nothing shows. *)

type params = {
  read_s : float;  (** One 512-byte block, amortised sequential. *)
  write_s : float;
  seek_s : float;  (** Random positioning penalty. *)
  freeze_fixed_s : float;  (** Per freeze operation (robot, fuse...). *)
  freeze_per_block_s : float;
  freeze_granularity : int;
      (** Blocks frozen as one unit; [max_int] = whole medium. *)
  incremental_freeze : bool;
      (** Can the device freeze repeatedly over its life? *)
  wmrm_before_freeze : bool;
      (** Is data rewritable before freezing (false for optical)? *)
  frozen_attack : attack_result;
      (** Fate of an insider rewrite of frozen data (tampered drive
          allowed, per the Section 5 threat model). *)
}

val params : tech -> params
val pp_attack : Format.formatter -> attack_result -> unit
