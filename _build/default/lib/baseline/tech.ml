type tech = Hdd | Soft_worm | Tape_lto3 | Optical_worm | Fuse_platter | Sero_probe

let all = [ Hdd; Soft_worm; Tape_lto3; Optical_worm; Fuse_platter; Sero_probe ]

let label = function
  | Hdd -> "plain HDD"
  | Soft_worm -> "software WORM disk"
  | Tape_lto3 -> "LTO-3 tape (RO flag)"
  | Optical_worm -> "optical WORM jukebox"
  | Fuse_platter -> "fuse-platter disk"
  | Sero_probe -> "SERO probe storage"

type attack_result = Rewrite_blocked | Rewrite_detected | Rewrite_undetected

type params = {
  read_s : float;
  write_s : float;
  seek_s : float;
  freeze_fixed_s : float;
  freeze_per_block_s : float;
  freeze_granularity : int;
  incremental_freeze : bool;
  wmrm_before_freeze : bool;
  frozen_attack : attack_result;
}

(* SERO figures derive from the probe cost model: a 604-byte frame is
   striped over 32 tips at 10 us/bit-row; a heat covers the 4096-dot
   write-once area at 150 us per ewb row plus a line read. *)
let sero_block_s =
  float_of_int (Codec.Sector.physical_bits / 32) *. 10e-6

let sero_freeze_line_s =
  (* Read 7 data blocks + burn 4096/32 ewb rows + read back. *)
  (7. *. sero_block_s) +. (4096. /. 32. *. 150e-6) +. (2. *. sero_block_s)

let params = function
  | Hdd ->
      {
        read_s = 6e-6;
        write_s = 6e-6;
        seek_s = 8e-3;
        freeze_fixed_s = 0.;
        freeze_per_block_s = 0.;
        freeze_granularity = 0; (* cannot freeze at all *)
        incremental_freeze = false;
        wmrm_before_freeze = true;
        frozen_attack = Rewrite_undetected;
      }
  | Soft_worm ->
      {
        read_s = 6e-6;
        write_s = 6e-6;
        seek_s = 8e-3;
        freeze_fixed_s = 1e-3;
        freeze_per_block_s = 0.;
        freeze_granularity = 1;
        incremental_freeze = true;
        wmrm_before_freeze = true;
        (* "software modifications can generally be undone" (Section 2) *)
        frozen_attack = Rewrite_undetected;
      }
  | Tape_lto3 ->
      {
        read_s = 6e-6;
        write_s = 6e-6;
        seek_s = 45.; (* spool to position *)
        freeze_fixed_s = 1e-3; (* set the cartridge-memory flag *)
        freeze_per_block_s = 0.;
        freeze_granularity = max_int; (* the whole cartridge *)
        incremental_freeze = false;
        wmrm_before_freeze = true;
        (* "can still be written using a tape drive that has been
           tampered with" (Section 2) *)
        frozen_attack = Rewrite_undetected;
      }
  | Optical_worm ->
      {
        read_s = 120e-6;
        write_s = 300e-6;
        seek_s = 8.; (* jukebox robot disc fetch *)
        freeze_fixed_s = 0.; (* written-once is frozen *)
        freeze_per_block_s = 300e-6; (* snapshot = copy onto a disc *)
        freeze_granularity = 1;
        incremental_freeze = true;
        wmrm_before_freeze = false;
        frozen_attack = Rewrite_blocked;
      }
  | Fuse_platter ->
      {
        read_s = 6e-6;
        write_s = 6e-6;
        seek_s = 8e-3;
        freeze_fixed_s = 10e-3; (* blow the fuse *)
        freeze_per_block_s = 0.;
        freeze_granularity = 250_000; (* one platter *)
        incremental_freeze = false; (* per platter, a handful of shots *)
        wmrm_before_freeze = true;
        frozen_attack = Rewrite_blocked;
      }
  | Sero_probe ->
      {
        read_s = sero_block_s;
        write_s = sero_block_s;
        seek_s = 1.5e-3; (* sled seek + settle *)
        freeze_fixed_s = sero_freeze_line_s;
        freeze_per_block_s = sero_block_s; (* hashing reads per block *)
        freeze_granularity = 8; (* one line *)
        incremental_freeze = true;
        wmrm_before_freeze = true;
        frozen_attack = Rewrite_detected;
      }

let pp_attack ppf a =
  Format.pp_print_string ppf
    (match a with
    | Rewrite_blocked -> "blocked"
    | Rewrite_detected -> "detected"
    | Rewrite_undetected -> "undetected")
