lib/baseline/compare.ml: Float Format List Tech
