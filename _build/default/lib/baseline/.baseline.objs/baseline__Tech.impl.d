lib/baseline/tech.ml: Codec Format
