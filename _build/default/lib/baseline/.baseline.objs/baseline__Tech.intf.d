lib/baseline/tech.mli: Format
