lib/baseline/compare.mli: Format Tech
