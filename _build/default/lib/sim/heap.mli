(** Binary min-heap keyed by float, used by the event queue ({!Des}) and
    by the LFS cleaner's cost-benefit segment selection. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> float -> 'a -> unit
val peek : 'a t -> (float * 'a) option
val pop : 'a t -> (float * 'a) option
val clear : 'a t -> unit
