lib/sim/des.mli:
