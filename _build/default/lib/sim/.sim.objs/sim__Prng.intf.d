lib/sim/prng.mli:
