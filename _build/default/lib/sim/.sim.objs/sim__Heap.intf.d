lib/sim/heap.mli:
