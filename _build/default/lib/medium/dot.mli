(** State of one magnetic dot — the three-state machine of Figure 2.

    A dot is either magnetised perpendicular to the medium (up = 1,
    down = 0) or {e heated}: its multilayer interfaces are destroyed and
    the easy axis has rotated in-plane, irreversibly.  Magnetic writes
    move between [Up] and [Down]; the electrical write is the only
    transition into [Heated], and nothing leaves [Heated]. *)

type direction = Up | Down

type t = Magnetised of direction | Heated

val equal : t -> t -> bool
val equal_direction : direction -> direction -> bool
val pp : Format.formatter -> t -> unit
val pp_direction : Format.formatter -> direction -> unit

val of_bool : bool -> direction
(** [true] = [Up] (logical 1), [false] = [Down] (logical 0). *)

val to_bool : direction -> bool
val invert : direction -> direction

val transition_mwb : t -> direction -> t
(** Magnetic write: sets the direction of a magnetised dot; {e no effect}
    on a heated dot (there is no perpendicular axis left to set). *)

val transition_ewb : t -> t
(** Electrical write: always lands in [Heated] (one-way). *)

val is_heated : t -> bool

val all_states : t list
(** The three reachable states, for exhaustive checks. *)

val transition_table : (t * string * t) list
(** Every (state, operation, state') edge of Figure 2, where operation
    is one of ["mwb 0"], ["mwb 1"], ["ewb"].  Used to print and to
    verify the figure. *)
