lib/medium/medium.mli: Dot Physics Sim
