lib/medium/medium.ml: Bytes Char Dot List Physics Sim
