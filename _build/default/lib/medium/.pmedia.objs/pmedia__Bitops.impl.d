lib/medium/bitops.ml: Dot List Medium Physics Sim
