lib/medium/bitops.mli: Dot Medium Physics
