lib/medium/dot.ml: Format List
