lib/medium/dot.mli: Format
