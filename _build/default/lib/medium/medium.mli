(** The patterned medium: a rows × cols matrix of magnetic dots
    (Section 6, Figure 5), each in one of the three {!Dot} states, plus
    a manufacturing defect map.

    States are packed two bits per dot so that media of 10^7–10^8 dots
    (the scale our experiments simulate; a real device would hold
    ~10^12) stay cheap.  All randomness (heated-dot reads, defect
    placement, collateral-damage draws) is drawn from the medium's own
    {!Sim.Prng.t}, so a seed reproduces a run exactly. *)

type t

type config = {
  rows : int;
  cols : int;
  geometry : Physics.Constants.dot_geometry;
  material : Physics.Constants.material;
  defect_rate : float;
      (** Fraction of dots that are manufacturing defects (cannot hold a
          stable perpendicular bit); placed uniformly at seed time. *)
  seed : int;
}

val default_config : rows:int -> cols:int -> config
(** 100 nm-pitch Co/Pt medium, defect rate 0, seed 42. *)

val create : config -> t
(** All dots start magnetised [Down] (a bulk-erased virgin medium). *)

val config : t -> config
val size : t -> int
(** Total number of dots, [rows * cols]. *)

val rows : t -> int
val cols : t -> int
val rng : t -> Sim.Prng.t

val get : t -> int -> Dot.t
(** Physical state of dot [i] (row-major index) — what an oracle (or a
    forensic lab with magnetic imaging, Section 8) sees, {e not} what a
    magnetic read returns.  @raise Invalid_argument out of range. *)

val set : t -> int -> Dot.t -> unit
(** Raw state override — reserved for the attacker model and tests; the
    device goes through {!Bitops}. *)

val is_defect : t -> int -> bool

val neighbours : t -> int -> int list
(** The 4-neighbourhood (same row ±1, same column ±1 row) — the dots at
    thermal risk when dot [i] is pulse-heated. *)

val heated_count : t -> int
val heated_fraction : t -> float

val capacity_bits : t -> float
(** Bits the medium would hold at its areal density — reported, not a
    limit on [size]. *)

val iter_heated : t -> (int -> unit) -> unit
(** Visit every heated dot (used by the full-medium forensic scan). *)

val note_heated : t -> int -> unit
(** Bookkeeping hook for {!Bitops}: records that dot [i] became heated
    (idempotent). *)
