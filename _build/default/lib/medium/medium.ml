type config = {
  rows : int;
  cols : int;
  geometry : Physics.Constants.dot_geometry;
  material : Physics.Constants.material;
  defect_rate : float;
  seed : int;
}

type t = {
  config : config;
  states : Bytes.t; (* 2 bits per dot: 0 = Down, 1 = Up, 2 = Heated *)
  defects : Bytes.t; (* 1 bit per dot *)
  rng : Sim.Prng.t;
  mutable heated : int;
}

let default_config ~rows ~cols =
  {
    rows;
    cols;
    geometry = Physics.Constants.dot_100nm;
    material = Physics.Constants.co_pt;
    defect_rate = 0.;
    seed = 42;
  }

let size t = t.config.rows * t.config.cols
let rows t = t.config.rows
let cols t = t.config.cols
let config t = t.config
let rng t = t.rng

let create config =
  if config.rows <= 0 || config.cols <= 0 then
    invalid_arg "Medium.create: non-positive dimensions";
  let n = config.rows * config.cols in
  let t =
    {
      config;
      states = Bytes.make ((n + 3) / 4) '\x00';
      defects = Bytes.make ((n + 7) / 8) '\x00';
      rng = Sim.Prng.create config.seed;
      heated = 0;
    }
  in
  if config.defect_rate > 0. then
    for i = 0 to n - 1 do
      if Sim.Prng.bernoulli t.rng config.defect_rate then begin
        let byte = i / 8 and bit = i mod 8 in
        Bytes.set t.defects byte
          (Char.chr (Char.code (Bytes.get t.defects byte) lor (1 lsl bit)))
      end
    done;
  t

let check_range t i =
  if i < 0 || i >= size t then invalid_arg "Medium: dot index out of range"

let raw_get t i =
  let byte = i / 4 and shift = 2 * (i mod 4) in
  (Char.code (Bytes.get t.states byte) lsr shift) land 3

let raw_set t i v =
  let byte = i / 4 and shift = 2 * (i mod 4) in
  let old = Char.code (Bytes.get t.states byte) in
  Bytes.set t.states byte
    (Char.chr (old land lnot (3 lsl shift) lor (v lsl shift)))

let get t i =
  check_range t i;
  match raw_get t i with
  | 0 -> Dot.Magnetised Dot.Down
  | 1 -> Dot.Magnetised Dot.Up
  | _ -> Dot.Heated

let set t i s =
  check_range t i;
  let was_heated = raw_get t i = 2 in
  let v =
    match s with
    | Dot.Magnetised Dot.Down -> 0
    | Dot.Magnetised Dot.Up -> 1
    | Dot.Heated -> 2
  in
  (match (was_heated, s) with
  | false, Dot.Heated -> t.heated <- t.heated + 1
  | true, Dot.Magnetised _ -> t.heated <- t.heated - 1
  | _ -> ());
  raw_set t i v

let is_defect t i =
  check_range t i;
  Char.code (Bytes.get t.defects (i / 8)) land (1 lsl (i mod 8)) <> 0

let neighbours t i =
  check_range t i;
  let c = t.config.cols in
  let row = i / c and col = i mod c in
  let candidates =
    [ (row, col - 1); (row, col + 1); (row - 1, col); (row + 1, col) ]
  in
  List.filter_map
    (fun (r, cl) ->
      if r < 0 || r >= t.config.rows || cl < 0 || cl >= c then None
      else Some ((r * c) + cl))
    candidates

let heated_count t = t.heated
let heated_fraction t = float_of_int t.heated /. float_of_int (size t)

let capacity_bits t =
  let area_cm2 =
    float_of_int (size t) *. t.config.geometry.pitch *. t.config.geometry.pitch
    /. 1e-4
  in
  area_cm2 *. Physics.Constants.areal_density_bits_per_cm2 t.config.geometry

let iter_heated t f =
  for i = 0 to size t - 1 do
    if raw_get t i = 2 then f i
  done

let note_heated t i =
  check_range t i;
  if raw_get t i <> 2 then begin
    t.heated <- t.heated + 1;
    raw_set t i 2
  end
