type direction = Up | Down
type t = Magnetised of direction | Heated

let equal_direction a b =
  match (a, b) with Up, Up | Down, Down -> true | (Up | Down), _ -> false

let equal a b =
  match (a, b) with
  | Magnetised x, Magnetised y -> equal_direction x y
  | Heated, Heated -> true
  | (Magnetised _ | Heated), _ -> false

let pp_direction ppf d =
  Format.pp_print_string ppf (match d with Up -> "1" | Down -> "0")

let pp ppf = function
  | Magnetised d -> pp_direction ppf d
  | Heated -> Format.pp_print_string ppf "H"

let of_bool b = if b then Up else Down
let to_bool = function Up -> true | Down -> false
let invert = function Up -> Down | Down -> Up

let transition_mwb t d =
  match t with Magnetised _ -> Magnetised d | Heated -> Heated

let transition_ewb _ = Heated
let is_heated = function Heated -> true | Magnetised _ -> false

let all_states = [ Magnetised Up; Magnetised Down; Heated ]

let transition_table =
  List.concat_map
    (fun s ->
      [
        (s, "mwb 0", transition_mwb s Down);
        (s, "mwb 1", transition_mwb s Up);
        (s, "ewb", transition_ewb s);
      ])
    all_states
