(* The WORM technology comparison: the paper's qualitative claims must
   hold as inequalities over the model's outputs. *)

let sc = Baseline.Compare.default_scenario
let outcomes = lazy (Baseline.Compare.run_all sc)

let find tech =
  List.find (fun o -> o.Baseline.Compare.tech = tech) (Lazy.force outcomes)

let cases =
  [
    Alcotest.test_case "every technology reports" `Quick (fun () ->
        Alcotest.(check int) "6 rows" 6 (List.length (Lazy.force outcomes)));
    Alcotest.test_case "plain HDD cannot freeze anything" `Quick (fun () ->
        let o = find Baseline.Tech.Hdd in
        Alcotest.(check int) "no freezes" 0 o.Baseline.Compare.snapshots_frozen;
        Alcotest.(check bool) "rewrite undetected" true
          (o.Baseline.Compare.attack = Baseline.Tech.Rewrite_undetected));
    Alcotest.test_case "software WORM freezes but gives no real evidence"
      `Quick (fun () ->
        let o = find Baseline.Tech.Soft_worm in
        Alcotest.(check int) "all snapshots" sc.Baseline.Compare.snapshots
          o.Baseline.Compare.snapshots_frozen;
        Alcotest.(check bool) "undetected" true
          (o.Baseline.Compare.attack = Baseline.Tech.Rewrite_undetected));
    Alcotest.test_case "tape freezes the whole cartridge (collateral)" `Quick
      (fun () ->
        let o = find Baseline.Tech.Tape_lto3 in
        Alcotest.(check int) "one freeze only" 1 o.Baseline.Compare.snapshots_frozen;
        Alcotest.(check bool) "massive collateral" true
          (o.Baseline.Compare.collateral_blocks > 90000));
    Alcotest.test_case "tape random access is catastrophically slow" `Quick
      (fun () ->
        let tape = find Baseline.Tech.Tape_lto3 in
        let disk = find Baseline.Tech.Hdd in
        Alcotest.(check bool) "1000x slower" true
          (tape.Baseline.Compare.total_s > 1000. *. disk.Baseline.Compare.total_s));
    Alcotest.test_case "optical WORM blocks rewrites but loses WMRM use"
      `Quick (fun () ->
        let o = find Baseline.Tech.Optical_worm in
        Alcotest.(check bool) "blocked" true
          (o.Baseline.Compare.attack = Baseline.Tech.Rewrite_blocked);
        Alcotest.(check int) "no writable WMRM area" 0 o.Baseline.Compare.writable_left);
    Alcotest.test_case "fuse platter is one-shot and coarse" `Quick (fun () ->
        let o = find Baseline.Tech.Fuse_platter in
        Alcotest.(check int) "single freeze" 1 o.Baseline.Compare.snapshots_frozen;
        Alcotest.(check bool) "collateral" true (o.Baseline.Compare.collateral_blocks > 100000 / 2));
    Alcotest.test_case
      "SERO: every snapshot, zero collateral, WMRM preserved, detection"
      `Quick (fun () ->
        let o = find Baseline.Tech.Sero_probe in
        Alcotest.(check int) "all snapshots" sc.Baseline.Compare.snapshots
          o.Baseline.Compare.snapshots_frozen;
        Alcotest.(check int) "zero collateral" 0 o.Baseline.Compare.collateral_blocks;
        Alcotest.(check bool) "most of the device writable" true
          (o.Baseline.Compare.writable_left > 90000);
        Alcotest.(check bool) "detected" true
          (o.Baseline.Compare.attack = Baseline.Tech.Rewrite_detected));
    Alcotest.test_case "SERO is the only tech with all four properties"
      `Quick (fun () ->
        let good o =
          o.Baseline.Compare.snapshots_frozen = sc.Baseline.Compare.snapshots
          && o.Baseline.Compare.collateral_blocks = 0
          && o.Baseline.Compare.writable_left > 0
          && o.Baseline.Compare.attack <> Baseline.Tech.Rewrite_undetected
        in
        let winners = List.filter good (Lazy.force outcomes) in
        Alcotest.(check int) "exactly one" 1 (List.length winners);
        Alcotest.(check bool) "it is SERO" true
          ((List.hd winners).Baseline.Compare.tech = Baseline.Tech.Sero_probe));
    Alcotest.test_case "SERO freeze latency is the price paid" `Quick
      (fun () ->
        let sero = find Baseline.Tech.Sero_probe in
        let soft = find Baseline.Tech.Soft_worm in
        Alcotest.(check bool) "slower than a flag write" true
          (sero.Baseline.Compare.snapshot_latency_s
          > soft.Baseline.Compare.snapshot_latency_s));
    Alcotest.test_case "params table is self-consistent" `Quick (fun () ->
        List.iter
          (fun tech ->
            let p = Baseline.Tech.params tech in
            Alcotest.(check bool) "positive perf" true
              (p.Baseline.Tech.read_s > 0. && p.Baseline.Tech.write_s > 0.);
            Alcotest.(check bool) "granularity sane" true
              (p.Baseline.Tech.freeze_granularity >= 0))
          Baseline.Tech.all);
  ]

let () = Alcotest.run "baseline" [ ("comparison", cases) ]
