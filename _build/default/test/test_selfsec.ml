(* Self-securing storage wrapper (Section 8 building block). *)

let ok what = function Ok v -> v | Error e -> Alcotest.failf "%s: %s" what e

let make () =
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:4096 ~line_exp:3 ())
  in
  let fs = Lfs.Fs.format dev in
  (dev, fs, ok "wrap" (Selfsec.wrap ~epoch_len:8 fs))

let basic =
  [
    Alcotest.test_case "operations are journalled in order" `Quick (fun () ->
        let _, _, s = make () in
        ok "create" (Selfsec.create s "/doc");
        ok "write" (Selfsec.write_file s "/doc" ~offset:0 "v1");
        ok "write" (Selfsec.write_file s "/doc" ~offset:0 "v2");
        let h = ok "history" (Selfsec.history s) in
        Alcotest.(check (list string)) "ops" [ "create"; "write"; "write" ]
          (List.map (fun e -> e.Selfsec.op) h);
        Alcotest.(check (list int)) "seqs" [ 0; 1; 2 ]
          (List.map (fun e -> e.Selfsec.seq) h));
    Alcotest.test_case "digests capture before/after content" `Quick (fun () ->
        let _, _, s = make () in
        ok "create" (Selfsec.create s "/doc");
        ok "w1" (Selfsec.write_file s "/doc" ~offset:0 "original");
        ok "w2" (Selfsec.write_file s "/doc" ~offset:0 "replaced");
        let h = ok "history" (Selfsec.history s) in
        let w2 = List.nth h 2 in
        Alcotest.(check bool) "before = digest of 'original'" true
          (Hash.Sha256.equal w2.Selfsec.before_digest
             (Hash.Sha256.digest_string "original"));
        Alcotest.(check bool) "after = digest of 'replaced'" true
          (Hash.Sha256.equal w2.Selfsec.after_digest
             (Hash.Sha256.digest_string "replaced")));
    Alcotest.test_case "unlink is journalled with the last content" `Quick
      (fun () ->
        let _, _, s = make () in
        ok "create" (Selfsec.create s "/victim");
        ok "write" (Selfsec.write_file s "/victim" ~offset:0 "secret");
        ok "unlink" (Selfsec.unlink s "/victim");
        let h = ok "history" (Selfsec.history s) in
        let rm = List.nth h 2 in
        Alcotest.(check string) "op" "unlink" rm.Selfsec.op;
        Alcotest.(check bool) "content digest retained" true
          (Hash.Sha256.equal rm.Selfsec.before_digest
             (Hash.Sha256.digest_string "secret")));
  ]

let epochs =
  [
    Alcotest.test_case "epochs seal automatically and verify" `Quick (fun () ->
        let _, _, s = make () in
        ok "create" (Selfsec.create s "/doc");
        for i = 1 to 20 do
          ok "write" (Selfsec.write_file s "/doc" ~offset:0 (Printf.sprintf "v%d" i))
        done;
        let a = ok "verify" (Selfsec.verify_history s) in
        Alcotest.(check int) "entries" 21 a.Selfsec.entries;
        Alcotest.(check bool) "epochs sealed" true (a.Selfsec.sealed_epochs >= 2);
        Alcotest.(check bool) "chain intact" true a.Selfsec.chain_intact;
        Alcotest.(check int) "no tampered epochs" 0
          (List.length a.Selfsec.tampered_epochs));
    Alcotest.test_case "manual seal freezes the open epoch" `Quick (fun () ->
        let _, _, s = make () in
        ok "create" (Selfsec.create s "/doc");
        ok "write" (Selfsec.write_file s "/doc" ~offset:0 "x");
        ok "seal" (Selfsec.seal_epoch s);
        let a = ok "verify" (Selfsec.verify_history s) in
        Alcotest.(check bool) "sealed" true (a.Selfsec.sealed_epochs >= 1);
        Alcotest.(check int) "open entries reset" 0 a.Selfsec.open_entries);
    Alcotest.test_case "journal survives remount (rebuilt by replay)" `Quick
      (fun () ->
        let dev, fs, s = make () in
        ok "create" (Selfsec.create s "/doc");
        for i = 1 to 10 do
          ok "write" (Selfsec.write_file s "/doc" ~offset:0 (string_of_int i))
        done;
        Lfs.Fs.unmount fs;
        let fs2 = ok "mount" (Lfs.Fs.mount dev) in
        let s2 = ok "rewrap" (Selfsec.wrap ~epoch_len:8 fs2) in
        let h = ok "history" (Selfsec.history s2) in
        Alcotest.(check int) "11 entries" 11 (List.length h);
        ok "continue" (Selfsec.write_file s2 "/doc" ~offset:0 "after remount");
        let h = ok "history" (Selfsec.history s2) in
        Alcotest.(check int) "12 entries, sequence continues" 12 (List.length h);
        Alcotest.(check int) "last seq" 11
          (List.nth h 11).Selfsec.seq);
  ]

let attacks =
  [
    Alcotest.test_case "rewriting a sealed epoch is detected" `Quick (fun () ->
        let dev, fs, s = make () in
        ok "create" (Selfsec.create s "/doc");
        for i = 1 to 10 do
          ok "write" (Selfsec.write_file s "/doc" ~offset:0 (string_of_int i))
        done;
        (* Attack a sealed epoch file's block on the raw device. *)
        let st = Lfs.Fs.state fs in
        let ino =
          match Lfs.Dirops.lookup st "/.selfsec/epoch-000000" with
          | Some (i, _) -> i
          | None -> Alcotest.fail "epoch file missing"
        in
        let line = List.hd (Lfs.Heat.file_lines st ~ino) in
        Sero.Device.unsafe_write_block dev
          ~pba:(List.hd (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) line))
          "history, laundered";
        let a = ok "verify" (Selfsec.verify_history s) in
        Alcotest.(check bool) "tampered epoch reported" true
          (a.Selfsec.tampered_epochs <> []));
    Alcotest.test_case "journal truncation breaks the chain" `Quick (fun () ->
        let _, fs, s = make () in
        ok "create" (Selfsec.create s "/doc");
        ok "write" (Selfsec.write_file s "/doc" ~offset:0 "entry");
        (* The open (unsealed) epoch can still be rewritten via the FS —
           that is precisely the window; the chain check catches it. *)
        let path = "/.selfsec/epoch-000000" in
        let size = ok "size" (Lfs.Fs.file_size fs path) in
        ok "truncate-ish" (Lfs.Fs.write_file fs path ~offset:(size - 8)
             (String.make 8 '\x00'));
        let a = ok "verify" (Selfsec.verify_history s) in
        Alcotest.(check bool) "chain broken" false a.Selfsec.chain_intact);
  ]

let () =
  Alcotest.run "selfsec"
    [ ("journal", basic); ("epochs", epochs); ("attacks", attacks) ]
