(* Cross-library integration: full-stack scenarios and global
   invariants that single-module suites cannot see. *)

let ok what = function Ok v -> v | Error e -> Alcotest.failf "%s: %s" what e

(* {1 The whole paper narrative in one test} *)

let narrative =
  Alcotest.test_case "write / heat / tamper / detect / wipe / recover" `Quick
    (fun () ->
      let dev =
        Sero.Device.create (Sero.Device.default_config ~n_blocks:1024 ~line_exp:3 ())
      in
      let fs = Lfs.Fs.format dev in
      ok "mkdir" (Lfs.Fs.mkdir fs "/ledger");
      let body =
        String.concat "\n"
          (List.init 64 (fun i -> Printf.sprintf "entry %03d: amount %d" i (i * 17)))
      in
      ok "create" (Lfs.Fs.create fs ~heat_group:3 "/ledger/2007");
      ok "write" (Lfs.Fs.write_file fs "/ledger/2007" ~offset:0 body);
      let _ = ok "heat" (Lfs.Fs.heat fs "/ledger/2007") in
      Lfs.Fs.sync fs;
      (* Round-trip the whole device through an image file. *)
      let path = Filename.temp_file "sero" ".img" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Sero.Image.save dev path;
          let dev2 =
            match Sero.Image.load path with
            | Ok d -> d
            | Error e -> Alcotest.failf "image: %s" e
          in
          let fs2 = ok "mount" (Lfs.Fs.mount dev2) in
          Alcotest.(check string) "content survives the image" body
            (ok "read" (Lfs.Fs.read_file fs2 "/ledger/2007"));
          (* Tamper on the reloaded device; detection must hold there. *)
          let st = Lfs.Fs.state fs2 in
          let ino =
            match Lfs.Dirops.lookup st "/ledger/2007" with
            | Some (i, _) -> i
            | None -> Alcotest.fail "lost"
          in
          let line = List.hd (Lfs.Heat.file_lines st ~ino) in
          Sero.Device.unsafe_write_block dev2
            ~pba:
              (List.hd
                 (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev2) line))
            "entry 000: amount 0";
          Alcotest.(check bool) "tamper detected" true
            (List.exists
               (fun (_, v) -> Sero.Tamper.is_tampered v)
               (ok "verify" (Lfs.Fs.verify fs2 "/ledger/2007")));
          (* Total wipe: evidence and recovery per Section 5.2. *)
          Sero.Device.unsafe_magnetic_wipe dev2;
          Sero.Device.refresh_heated_cache dev2;
          let report = Lfs.Fsck.run dev2 in
          Alcotest.(check bool) "wiped heated lines testify" true
            (report.Lfs.Fsck.heated_tampered <> [])))

(* {1 Global accounting invariant}

   After any sequence of FS operations, every segment's live counter
   must equal the number of owner slots the liveness oracle confirms.
   (This property would have caught two real bugs found during
   development: the mid-clean segment reallocation and the metadata
   double-accounting.) *)

let check_accounting st =
  let ok = ref true in
  Array.iteri
    (fun seg s ->
      match s.Lfs.State.state with
      | Lfs.Enc.Seg_heated | Lfs.Enc.Seg_free -> ()
      | Lfs.Enc.Seg_open | Lfs.Enc.Seg_closed ->
          if seg >= Lfs.State.first_data_segment st && s.Lfs.State.owners_valid
          then begin
            let live = ref 0 in
            Array.iteri
              (fun slot owner ->
                let pba = Lfs.State.pba_of_slot st ~seg ~slot in
                if Lfs.Cleaner.is_live st ~pba owner then incr live)
              s.Lfs.State.owners;
            if !live <> s.Lfs.State.live then begin
              Printf.eprintf "segment %d: counter=%d oracle=%d\n" seg
                s.Lfs.State.live !live;
              ok := false
            end
          end)
    st.Lfs.State.segs;
  !ok

type op =
  | Write of int * int * int (* file, offset-block, length-bytes *)
  | Delete of int
  | Heat of int
  | Sync

let arb_ops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Write (f, o, l) -> Printf.sprintf "w%d@%d+%d" f o l
             | Delete f -> Printf.sprintf "d%d" f
             | Heat f -> Printf.sprintf "h%d" f
             | Sync -> "s")
           ops))
    QCheck.Gen.(
      list_size (1 -- 40)
        (frequency
           [
             ( 6,
               let* f = int_range 0 4 in
               let* o = int_range 0 10 in
               let* l = int_range 1 2000 in
               return (Write (f, o, l)) );
             (1, map (fun f -> Delete f) (int_range 0 4));
             (1, map (fun f -> Heat f) (int_range 0 4));
             (1, return Sync);
           ]))

let accounting_invariant =
  QCheck.Test.make ~name:"segment live counters match the liveness oracle"
    ~count:40 arb_ops
    (fun ops ->
      let dev =
        Sero.Device.create (Sero.Device.default_config ~n_blocks:1024 ~line_exp:3 ())
      in
      let fs = Lfs.Fs.format dev in
      let st = Lfs.Fs.state fs in
      let path f = Printf.sprintf "/f%d" f in
      List.iter
        (fun op ->
          (* Results are intentionally ignored: invalid ops (heating an
             empty file, writing a heated one) must be refused without
             corrupting the accounting. *)
          match op with
          | Write (f, o, l) ->
              if not (Lfs.Fs.exists fs (path f)) then
                ignore (Lfs.Fs.create fs ~heat_group:f (path f));
              ignore
                (Lfs.Fs.write_file fs (path f) ~offset:(512 * o)
                   (String.make l (Char.chr (65 + f))))
          | Delete f -> ignore (Lfs.Fs.unlink fs (path f))
          | Heat f -> ignore (Lfs.Fs.heat fs (path f))
          | Sync -> Lfs.Fs.sync fs)
        ops;
      check_accounting st)

(* {1 Cold-crash consistency}

   A mount sees only the last checkpoint: data written after it is
   gone, but everything reachable is consistent and heated lines are
   never lost (their ground truth is the medium). *)

let crash_consistency =
  Alcotest.test_case "mount after crash: checkpointed state, no corruption"
    `Quick (fun () ->
      let dev =
        Sero.Device.create (Sero.Device.default_config ~n_blocks:1024 ~line_exp:3 ())
      in
      let fs = Lfs.Fs.format dev in
      ok "create" (Lfs.Fs.create fs "/durable");
      ok "write" (Lfs.Fs.write_file fs "/durable" ~offset:0 "checkpointed");
      let _ = ok "heat" (Lfs.Fs.heat fs "/durable") in
      (* heat checkpoints; now crash mid-flight with unsynced work. *)
      ok "create2" (Lfs.Fs.create fs "/volatile");
      ok "write2" (Lfs.Fs.write_file fs "/volatile" ~offset:0 "never synced");
      (* No unmount: simulate the crash by just re-mounting the device. *)
      let fs2 = ok "mount" (Lfs.Fs.mount dev) in
      Alcotest.(check string) "durable file intact" "checkpointed"
        (ok "read" (Lfs.Fs.read_file fs2 "/durable"));
      Alcotest.(check bool) "heated state preserved" true
        (ok "heated" (Lfs.Fs.is_heated fs2 "/durable"));
      (* The unsynced file is either absent or fully consistent. *)
      (match Lfs.Fs.read_file fs2 "/volatile" with
      | Ok s -> Alcotest.(check string) "if present, consistent" "never synced" s
      | Error _ -> ());
      (* The FS keeps working after the crash. *)
      ok "post-crash create" (Lfs.Fs.create fs2 "/after");
      ok "post-crash write" (Lfs.Fs.write_file fs2 "/after" ~offset:0 "alive");
      Alcotest.(check string) "post-crash io" "alive"
        (ok "read" (Lfs.Fs.read_file fs2 "/after")))

(* {1 Mixed workloads share one device} *)

let shared_device =
  Alcotest.test_case "lfs + selfsec journal + verification coexist" `Quick
    (fun () ->
      let dev =
        Sero.Device.create (Sero.Device.default_config ~n_blocks:2048 ~line_exp:3 ())
      in
      let fs = Lfs.Fs.format dev in
      let s = ok "wrap" (Selfsec.wrap ~epoch_len:5 fs) in
      ok "create" (Selfsec.create s ~heat_group:1 "/contract");
      for i = 1 to 12 do
        ok "write" (Selfsec.write_file s "/contract" ~offset:0
             (Printf.sprintf "revision %d" i))
      done;
      (* Freeze the final revision as well as the journal epochs. *)
      let _ = ok "heat" (Lfs.Fs.heat fs "/contract") in
      let audit = ok "audit" (Selfsec.verify_history s) in
      Alcotest.(check bool) "journal sealed" true (audit.Selfsec.sealed_epochs >= 2);
      Alcotest.(check bool) "chain intact" true audit.Selfsec.chain_intact;
      Alcotest.(check bool) "contract heated" true
        (ok "is" (Lfs.Fs.is_heated fs "/contract"));
      (* The device-level scan sees both kinds of heated lines. *)
      let entries = Sero.Device.scan dev in
      let heated =
        List.length
          (List.filter
             (fun e ->
               match e.Sero.Device.verdict with
               | Sero.Tamper.Not_heated -> false
               | _ -> true)
             entries)
      in
      Alcotest.(check bool) "several heated lines on the device" true (heated >= 3))

let () =
  Alcotest.run "integration"
    [
      ("narrative", [ narrative ]);
      ("invariants", [ QCheck_alcotest.to_alcotest accounting_invariant ]);
      ("crash", [ crash_consistency ]);
      ("shared-device", [ shared_device ]);
    ]
