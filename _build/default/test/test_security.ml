(* The Section 5 security analysis, attack by attack. *)

let outcome_class = function
  | Security.Attacks.Refused _ -> `Refused
  | Security.Attacks.Ineffective _ -> `Ineffective
  | Security.Attacks.Detected _ -> `Detected
  | Security.Attacks.Undetected _ -> `Undetected

let class_name = function
  | `Refused -> "refused"
  | `Ineffective -> "ineffective"
  | `Detected -> "detected"
  | `Undetected -> "undetected"

let per_attack =
  List.map
    (fun a ->
      Alcotest.test_case (Security.Attacks.label a) `Quick (fun () ->
          let outcome = Security.Attacks.run a in
          Alcotest.(check string)
            (Security.Attacks.paper_ref a)
            (class_name (Security.Attacks.expected a))
            (class_name (outcome_class outcome))))
    Security.Attacks.all

let matrix_cases =
  [
    Alcotest.test_case "full matrix matches the paper" `Quick (fun () ->
        Alcotest.(check bool) "matches" true
          (Security.Attacks.matrix_matches_paper (Security.Attacks.matrix ())));
    Alcotest.test_case "matrix is deterministic for a fixed seed" `Quick
      (fun () ->
        let c1 = List.map (fun (_, o) -> outcome_class o) (Security.Attacks.matrix ~seed:5 ()) in
        let c2 = List.map (fun (_, o) -> outcome_class o) (Security.Attacks.matrix ~seed:5 ()) in
        Alcotest.(check bool) "same" true (c1 = c2));
    Alcotest.test_case "matrix robust across seeds" `Quick (fun () ->
        List.iter
          (fun seed ->
            Alcotest.(check bool)
              (Printf.sprintf "seed %d" seed)
              true
              (Security.Attacks.matrix_matches_paper (Security.Attacks.matrix ~seed ())))
          [ 1; 2; 3 ]);
  ]

let splice_cases =
  [
    Alcotest.test_case "strict addressing defeats the splice" `Quick (fun () ->
        match Security.Attacks.run_splice ~strict:true () with
        | Security.Attacks.Detected _ -> ()
        | o -> Alcotest.failf "%a" Security.Attacks.pp_outcome o);
    Alcotest.test_case "floating hashes fall to the splice (ablation)" `Quick
      (fun () ->
        match Security.Attacks.run_splice ~strict:false () with
        | Security.Attacks.Undetected _ -> ()
        | o -> Alcotest.failf "%a" Security.Attacks.pp_outcome o);
  ]

let threat_cases =
  [
    Alcotest.test_case "attacker model covers all four capabilities" `Quick
      (fun () ->
        Alcotest.(check int) "4" 4 (List.length Security.Threat.attacker_capabilities));
    Alcotest.test_case "every attack has a paper reference" `Quick (fun () ->
        List.iter
          (fun a ->
            Alcotest.(check bool)
              (Security.Attacks.label a)
              true
              (String.length (Security.Attacks.paper_ref a) > 0))
          Security.Attacks.all);
  ]

let () =
  Alcotest.run "security"
    [
      ("per-attack", per_attack);
      ("matrix", matrix_cases);
      ("splice-ablation", splice_cases);
      ("threat-model", threat_cases);
    ]
