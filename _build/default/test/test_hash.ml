(* SHA-256 against the FIPS 180-4 / NIST CAVS vectors, plus streaming
   and encoding properties. *)

let check_digest name input expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check string)
        name expected
        (Hash.Sha256.to_hex (Hash.Sha256.digest_string input)))

let nist_vectors =
  [
    ( "empty",
      "",
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" );
    ( "abc",
      "abc",
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" );
    ( "448-bit",
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "896-bit",
      "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
      ^ "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
    ( "one-block-exactly (64 bytes)",
      String.make 64 'a',
      "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb" );
    ( "len-55 (padding boundary)",
      String.make 55 'b',
      "eb2c86e932179f4ba13fe8715a26124b77d6bad290b9b4c1cc140cf633300c19" );
    ( "len-56 (padding boundary)",
      String.make 56 'b',
      "a5fc6e203a4c2b657d0d153885932414b2ffc6a93f0f8bf8b3183315e5a7212c" );
  ]

let million_a =
  Alcotest.test_case "million 'a' (streaming)" `Slow (fun () ->
      let ctx = Hash.Sha256.init () in
      let chunk = String.make 1000 'a' in
      for _ = 1 to 1000 do
        Hash.Sha256.feed_string ctx chunk
      done;
      Alcotest.(check string)
        "digest"
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        (Hash.Sha256.to_hex (Hash.Sha256.finalize ctx)))

let streaming_equals_oneshot =
  QCheck.Test.make ~name:"streaming equals one-shot at any chunking" ~count:200
    QCheck.(pair (string_of_size Gen.(0 -- 500)) (int_range 1 64))
    (fun (s, chunk) ->
      let ctx = Hash.Sha256.init () in
      let rec go off =
        if off < String.length s then begin
          let take = min chunk (String.length s - off) in
          Hash.Sha256.feed_bytes ctx (Bytes.of_string s) off take;
          go (off + take)
        end
      in
      go 0;
      Hash.Sha256.equal (Hash.Sha256.finalize ctx) (Hash.Sha256.digest_string s))

let concat_matches =
  QCheck.Test.make ~name:"digest_concat = digest of concatenation" ~count:200
    QCheck.(small_list (string_of_size Gen.(0 -- 50)))
    (fun parts ->
      Hash.Sha256.equal
        (Hash.Sha256.digest_concat parts)
        (Hash.Sha256.digest_string (String.concat "" parts)))

let hex_roundtrip =
  QCheck.Test.make ~name:"to_hex/of_hex roundtrip" ~count:200
    QCheck.(string_of_size (QCheck.Gen.return 10))
    (fun s ->
      let d = Hash.Sha256.digest_string s in
      Hash.Sha256.equal d (Hash.Sha256.of_hex (Hash.Sha256.to_hex d)))

let raw_roundtrip =
  QCheck.Test.make ~name:"to_raw/of_raw roundtrip" ~count:200
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s ->
      let d = Hash.Sha256.digest_string s in
      Hash.Sha256.equal d (Hash.Sha256.of_raw (Hash.Sha256.to_raw d)))

let no_trivial_collisions =
  QCheck.Test.make ~name:"distinct inputs give distinct digests" ~count:200
    QCheck.(pair (string_of_size Gen.(0 -- 80)) (string_of_size Gen.(0 -- 80)))
    (fun (a, b) ->
      String.equal a b
      || not (Hash.Sha256.equal (Hash.Sha256.digest_string a) (Hash.Sha256.digest_string b)))

let misuse =
  [
    Alcotest.test_case "finalize twice raises" `Quick (fun () ->
        let ctx = Hash.Sha256.init () in
        ignore (Hash.Sha256.finalize ctx);
        Alcotest.check_raises "second finalize"
          (Invalid_argument "Sha256.finalize: finalized context") (fun () ->
            ignore (Hash.Sha256.finalize ctx)));
    Alcotest.test_case "feed after finalize raises" `Quick (fun () ->
        let ctx = Hash.Sha256.init () in
        ignore (Hash.Sha256.finalize ctx);
        Alcotest.check_raises "feed"
          (Invalid_argument "Sha256.feed_bytes: finalized context") (fun () ->
            Hash.Sha256.feed_string ctx "x"));
    Alcotest.test_case "of_raw wrong size raises" `Quick (fun () ->
        Alcotest.check_raises "of_raw"
          (Invalid_argument "Sha256.of_raw: need 32 bytes") (fun () ->
            ignore (Hash.Sha256.of_raw "short")));
    Alcotest.test_case "of_hex bad digit raises" `Quick (fun () ->
        Alcotest.check_raises "of_hex"
          (Invalid_argument "Sha256.of_hex: bad digit") (fun () ->
            ignore (Hash.Sha256.of_hex (String.make 64 'z'))));
    Alcotest.test_case "zero digest is 32 zero bytes" `Quick (fun () ->
        Alcotest.(check string)
          "raw"
          (String.make 32 '\x00')
          (Hash.Sha256.to_raw Hash.Sha256.zero));
    Alcotest.test_case "compare is a total order consistent with equal" `Quick
      (fun () ->
        let a = Hash.Sha256.digest_string "a"
        and b = Hash.Sha256.digest_string "b" in
        Alcotest.(check bool) "equal self" true (Hash.Sha256.compare a a = 0);
        Alcotest.(check bool)
          "antisym" true
          (Hash.Sha256.compare a b = -Hash.Sha256.compare b a));
  ]

let () =
  Alcotest.run "hash"
    [
      ("nist-vectors", List.map (fun (n, i, e) -> check_digest n i e) nist_vectors);
      ("large", [ million_a ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            streaming_equals_oneshot; concat_matches; hex_roundtrip;
            raw_roundtrip; no_trivial_collisions;
          ] );
      ("misuse", misuse);
    ]
