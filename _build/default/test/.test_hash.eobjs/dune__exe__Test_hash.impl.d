test/test_hash.ml: Alcotest Bytes Gen Hash List QCheck QCheck_alcotest String
