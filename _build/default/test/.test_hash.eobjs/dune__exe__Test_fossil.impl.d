test/test_fossil.ml: Alcotest Fossil List Printf QCheck QCheck_alcotest Result Sero String
