test/test_lfs.ml: Alcotest Array Bytes Char Gen Hash Lfs List Printf QCheck QCheck_alcotest Sero String
