test/test_security.ml: Alcotest List Printf Security String
