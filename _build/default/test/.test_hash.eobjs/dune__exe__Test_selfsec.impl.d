test/test_selfsec.ml: Alcotest Hash Lfs List Printf Selfsec Sero String
