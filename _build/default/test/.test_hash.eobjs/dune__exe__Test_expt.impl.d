test/test_expt.ml: Alcotest Buffer Expt Float Format Lfs List Printf String
