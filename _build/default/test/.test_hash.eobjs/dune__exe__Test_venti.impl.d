test/test_venti.ml: Alcotest Char Gen Hash List Printf QCheck QCheck_alcotest Result Sero String Venti
