test/test_sero.ml: Alcotest Bytes Char Filename Fun Gen Hash In_channel List Out_channel Pmedia Printf Probe QCheck QCheck_alcotest Sero Sim String Sys
