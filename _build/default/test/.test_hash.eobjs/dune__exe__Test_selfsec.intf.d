test/test_selfsec.mli:
