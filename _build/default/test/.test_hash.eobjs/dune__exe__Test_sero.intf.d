test/test_sero.mli:
