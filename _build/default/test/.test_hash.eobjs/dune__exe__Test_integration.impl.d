test/test_integration.ml: Alcotest Array Char Filename Fun Lfs List Printf QCheck QCheck_alcotest Selfsec Sero String Sys
