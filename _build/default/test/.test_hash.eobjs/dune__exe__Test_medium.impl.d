test/test_medium.ml: Alcotest Float Format List Physics Pmedia QCheck QCheck_alcotest String
