test/test_physics.ml: Alcotest Array Float List Physics Printf QCheck QCheck_alcotest Sim
