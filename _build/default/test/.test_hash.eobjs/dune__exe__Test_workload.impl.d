test/test_workload.ml: Alcotest Array Buffer Char Hash Lfs List Pmedia Printf Probe QCheck QCheck_alcotest Sero Sim String Workload
