test/test_physics.mli:
