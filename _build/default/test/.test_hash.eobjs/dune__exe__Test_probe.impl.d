test/test_probe.ml: Alcotest Array List Pmedia Probe QCheck QCheck_alcotest Sim
