test/test_venti.mli:
