test/test_baseline.ml: Alcotest Baseline Lazy List
