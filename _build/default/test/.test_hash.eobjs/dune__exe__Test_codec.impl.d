test/test_codec.ml: Alcotest Array Bytes Char Codec Gen Hashtbl List QCheck QCheck_alcotest Sim String
