test/test_fossil.mli:
