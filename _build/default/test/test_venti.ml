(* Venti-style content-addressed archival store. *)

let qtest = QCheck_alcotest.to_alcotest
let ok what = function Ok v -> v | Error e -> Alcotest.failf "%s: %s" what e

let make ?(n_blocks = 2048) ?(eager_heat = true) () =
  Venti.create ~eager_heat
    (Sero.Device.create (Sero.Device.default_config ~n_blocks ~line_exp:3 ()))

let basic_cases =
  [
    Alcotest.test_case "put/get roundtrip" `Quick (fun () ->
        let v = make () in
        let score = ok "put" (Venti.put v "archived content") in
        Alcotest.(check string) "get" "archived content" (ok "get" (Venti.get v score)));
    Alcotest.test_case "identical content dedupes" `Quick (fun () ->
        let v = make () in
        let s1 = ok "p1" (Venti.put v "same") in
        let s2 = ok "p2" (Venti.put v "same") in
        Alcotest.(check bool) "same score" true (Hash.Sha256.equal s1 s2);
        Alcotest.(check int) "one block" 1 (Venti.stats v).Venti.blocks_stored;
        Alcotest.(check int) "one dedup hit" 1 (Venti.stats v).Venti.dedup_hits);
    Alcotest.test_case "unknown score is an error" `Quick (fun () ->
        let v = make () in
        match Venti.get v (Hash.Sha256.digest_string "never stored") with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "got phantom block");
    Alcotest.test_case "oversized block refused" `Quick (fun () ->
        let v = make () in
        match Venti.put v (String.make 600 'x') with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "oversize accepted");
    Alcotest.test_case "mem reflects storage" `Quick (fun () ->
        let v = make () in
        let s = ok "put" (Venti.put v "x") in
        Alcotest.(check bool) "mem" true (Venti.mem v s);
        Alcotest.(check bool) "not mem" false
          (Venti.mem v (Hash.Sha256.digest_string "y")));
  ]

let stream_roundtrip =
  QCheck.Test.make ~name:"put_stream/get_stream roundtrip at any size" ~count:30
    QCheck.(string_of_size Gen.(0 -- 20000))
    (fun data ->
      let v = make ~n_blocks:4096 () in
      let root = Result.get_ok (Venti.put_stream v data) in
      match Venti.get_stream v root with
      | Ok got -> String.equal got data
      | Error _ -> false)

let stream_dedup =
  QCheck.Test.make ~name:"re-archiving a stream stores nothing new" ~count:20
    QCheck.(string_of_size Gen.(100 -- 5000))
    (fun data ->
      let v = make ~n_blocks:4096 () in
      let r1 = Result.get_ok (Venti.put_stream v data) in
      let blocks1 = (Venti.stats v).Venti.blocks_stored in
      let r2 = Result.get_ok (Venti.put_stream v data) in
      Hash.Sha256.equal r1 r2 && (Venti.stats v).Venti.blocks_stored = blocks1)

let snapshot_cases =
  [
    Alcotest.test_case "snapshot / restore / verify" `Quick (fun () ->
        let v = make () in
        let files =
          [ ("a.txt", String.make 900 'a'); ("b.txt", "short"); ("c.txt", "") ]
        in
        let snap = ok "snap" (Venti.snapshot v ~label:"t" files) in
        let restored = ok "restore" (Venti.restore v snap) in
        Alcotest.(check int) "count" 3 (List.length restored);
        List.iter2
          (fun (n1, d1) (n2, d2) ->
            Alcotest.(check string) "name" n1 n2;
            Alcotest.(check string) "data" d1 d2)
          files restored;
        ok "verify" (Venti.verify_snapshot v snap));
    Alcotest.test_case "root line is heated even under lazy heating" `Quick
      (fun () ->
        let v = make ~eager_heat:false () in
        let snap = ok "snap" (Venti.snapshot v ~label:"t" [ ("f", "data") ]) in
        ignore snap;
        Alcotest.(check bool) "at least one line heated" true
          ((Venti.stats v).Venti.lines_heated >= 1));
    Alcotest.test_case "tampering any stored block breaks verification" `Quick
      (fun () ->
        let v = make () in
        let snap =
          ok "snap" (Venti.snapshot v ~label:"t" [ ("f", String.make 3000 'q') ])
        in
        let dev = Venti.device v in
        let lay = Sero.Device.layout dev in
        Sero.Device.unsafe_write_block dev
          ~pba:(List.nth (Sero.Layout.data_blocks_of_line lay 0) 2)
          "overwritten";
        (match Venti.verify_snapshot v snap with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "tamper missed");
        match Venti.restore v snap with
        | Error _ -> ()
        | Ok files ->
            (* If restore succeeded the content must still be wrong-free;
               with a tampered leaf the score check must have failed. *)
            Alcotest.(check bool) "content mismatch surfaced" true
              (List.for_all (fun (_, d) -> String.equal d (String.make 3000 'q')) files));
    Alcotest.test_case "eager heating burns every filled line" `Quick
      (fun () ->
        let v = make ~eager_heat:true () in
        (* Distinct chunk contents, or dedup collapses the stream to a
           single stored leaf. *)
        let body = String.init 8000 (fun i -> Char.chr (32 + (i mod 90))) in
        ignore (ok "snap" (Venti.snapshot v ~label:"t" [ ("f", body) ]));
        let s = Venti.stats v in
        Alcotest.(check bool) "several lines" true (s.Venti.lines_heated >= 2));
  ]

let reindex_cases =
  [
    Alcotest.test_case "reindex rebuilds the score index from the medium"
      `Quick (fun () ->
        let v = make () in
        let files =
          List.init 4 (fun i ->
              ( Printf.sprintf "f%d" i,
                String.init (700 + (i * 321)) (fun j -> Char.chr (32 + ((i + j) mod 90))) ))
        in
        let snap = ok "snap" (Venti.snapshot v ~label:"t" files) in
        let v2 =
          match Venti.reindex (Venti.device v) with
          | Ok v2 -> v2
          | Error e -> Alcotest.failf "reindex: %s" e
        in
        let restored = ok "restore" (Venti.restore v2 snap) in
        List.iter2
          (fun (n1, d1) (n2, d2) ->
            Alcotest.(check string) "name" n1 n2;
            Alcotest.(check bool) "data" true (String.equal d1 d2))
          files restored;
        Alcotest.(check int) "same block count"
          (Venti.stats v).Venti.blocks_stored (Venti.stats v2).Venti.blocks_stored;
        (* New puts continue from where the arena left off (dedup works
           against re-derived scores). *)
        let s1 = ok "put old" (Venti.put v2 "fresh block after reindex") in
        let s2 = ok "dedup" (Venti.put v2 "fresh block after reindex") in
        Alcotest.(check bool) "dedup after reindex" true (Hash.Sha256.equal s1 s2));
  ]

let () =
  Alcotest.run "venti"
    [
      ("blocks", basic_cases);
      ("streams", List.map qtest [ stream_roundtrip; stream_dedup ]);
      ("snapshots", snapshot_cases);
      ("reindex", reindex_cases);
    ]
