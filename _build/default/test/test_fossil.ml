(* The fossilised index. *)

let qtest = QCheck_alcotest.to_alcotest
let ok what = function Ok v -> v | Error e -> Alcotest.failf "%s: %s" what e

let make ?(n_blocks = 4096) ?branching () =
  Fossil.create ?branching
    (Sero.Device.create (Sero.Device.default_config ~n_blocks ~line_exp:3 ()))

let basic_cases =
  [
    Alcotest.test_case "insert then find" `Quick (fun () ->
        let f = make () in
        ok "insert" (Fossil.insert f ~key:"k" ~value:"v");
        Alcotest.(check (list string)) "found" [ "v" ] (ok "find" (Fossil.find f ~key:"k")));
    Alcotest.test_case "absent key finds nothing" `Quick (fun () ->
        let f = make () in
        ok "insert" (Fossil.insert f ~key:"k" ~value:"v");
        Alcotest.(check (list string)) "empty" [] (ok "find" (Fossil.find f ~key:"nope")));
    Alcotest.test_case "duplicate keys keep all values in order" `Quick
      (fun () ->
        let f = make () in
        ok "i1" (Fossil.insert f ~key:"k" ~value:"first");
        ok "i2" (Fossil.insert f ~key:"k" ~value:"second");
        Alcotest.(check (list string)) "both" [ "first"; "second" ]
          (ok "find" (Fossil.find f ~key:"k")));
    Alcotest.test_case "oversized value refused" `Quick (fun () ->
        let f = make () in
        match Fossil.insert f ~key:"k" ~value:(String.make 200 'v') with
        | Error _ -> ()
        | Ok () -> Alcotest.fail "accepted");
  ]

let many_inserts_found =
  QCheck.Test.make ~name:"hundreds of inserts all findable" ~count:5
    QCheck.(int_range 100 400)
    (fun n ->
      let f = make () in
      for i = 0 to n - 1 do
        Result.get_ok
          (Fossil.insert f ~key:(Printf.sprintf "key%d" i)
             ~value:(Printf.sprintf "val%d" i))
      done;
      List.for_all
        (fun i ->
          Fossil.find f ~key:(Printf.sprintf "key%d" i)
          = Ok [ Printf.sprintf "val%d" i ])
        (List.init n (fun i -> i)))

let sealing_cases =
  [
    Alcotest.test_case "enough inserts seal the root and grow depth" `Quick
      (fun () ->
        let f = make () in
        for i = 0 to 499 do
          ok "insert" (Fossil.insert f ~key:(string_of_int i) ~value:"x")
        done;
        let s = Fossil.stats f in
        Alcotest.(check bool) "sealed some" true (s.Fossil.sealed_nodes >= 1);
        Alcotest.(check bool) "descended" true (s.Fossil.depth >= 1);
        Alcotest.(check int) "all entries" 500 s.Fossil.entries);
    Alcotest.test_case "sealed nodes verify Intact" `Quick (fun () ->
        let f = make () in
        for i = 0 to 499 do
          ok "insert" (Fossil.insert f ~key:(string_of_int i) ~value:"x")
        done;
        List.iter
          (fun (line, v) ->
            Alcotest.(check bool) (Printf.sprintf "line %d" line) true
              (Sero.Tamper.equal_verdict v Sero.Tamper.Intact))
          (Fossil.verify f));
    Alcotest.test_case "tampering a sealed node is detected" `Quick (fun () ->
        let f = make () in
        for i = 0 to 499 do
          ok "insert" (Fossil.insert f ~key:(string_of_int i) ~value:"x")
        done;
        match Fossil.verify f with
        | [] -> Alcotest.fail "nothing sealed"
        | (line, _) :: _ ->
            let dev = Fossil.device f in
            Sero.Device.unsafe_write_block dev
              ~pba:(List.hd (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) line))
              "falsified entry";
            let v = List.assoc line (Fossil.verify f) in
            Alcotest.(check bool) "tampered" true (Sero.Tamper.is_tampered v));
    Alcotest.test_case "entries in sealed nodes remain findable" `Quick
      (fun () ->
        let f = make () in
        for i = 0 to 499 do
          ok "insert" (Fossil.insert f ~key:(Printf.sprintf "k%d" i) ~value:(Printf.sprintf "v%d" i))
        done;
        (* Some of the early keys necessarily live in sealed nodes now. *)
        List.iter
          (fun i ->
            Alcotest.(check (list string))
              (Printf.sprintf "k%d" i)
              [ Printf.sprintf "v%d" i ]
              (ok "find" (Fossil.find f ~key:(Printf.sprintf "k%d" i))))
          [ 0; 1; 2; 3; 4 ]);
  ]

let reload_cases =
  [
    Alcotest.test_case "reload rebuilds the index from the medium" `Quick
      (fun () ->
        let f = make () in
        for i = 0 to 199 do
          ok "insert" (Fossil.insert f ~key:(Printf.sprintf "k%d" i) ~value:(Printf.sprintf "v%d" i))
        done;
        let dev = Fossil.device f in
        let f2 = ok "reload" (Fossil.reload dev) in
        List.iter
          (fun i ->
            Alcotest.(check (list string))
              (Printf.sprintf "k%d" i)
              [ Printf.sprintf "v%d" i ]
              (ok "find" (Fossil.find f2 ~key:(Printf.sprintf "k%d" i))))
          [ 0; 50; 99; 150; 199 ];
        let s1 = Fossil.stats f and s2 = Fossil.stats f2 in
        Alcotest.(check int) "nodes" s1.Fossil.nodes s2.Fossil.nodes;
        Alcotest.(check int) "entries" s1.Fossil.entries s2.Fossil.entries;
        Alcotest.(check int) "sealed" s1.Fossil.sealed_nodes s2.Fossil.sealed_nodes);
  ]

let () =
  Alcotest.run "fossil"
    [
      ("basic", basic_cases @ [ qtest many_inserts_found ]);
      ("sealing", sealing_cases);
      ("reload", reload_cases);
    ]
