(* The patterned medium: dot state machine (Figure 2), packed state
   matrix, and the four bit operations. *)

let qtest = QCheck_alcotest.to_alcotest

let dot_state =
  QCheck.make
    (QCheck.Gen.oneofl
       [ Pmedia.Dot.Magnetised Pmedia.Dot.Up;
         Pmedia.Dot.Magnetised Pmedia.Dot.Down; Pmedia.Dot.Heated ])
    ~print:(Format.asprintf "%a" Pmedia.Dot.pp)

(* {1 Figure 2: state machine} *)

let dot_cases =
  [
    Alcotest.test_case "exhaustive transition table matches Figure 2" `Quick
      (fun () ->
        let expect =
          [
            (Pmedia.Dot.Magnetised Pmedia.Dot.Up, "mwb 0", Pmedia.Dot.Magnetised Pmedia.Dot.Down);
            (Pmedia.Dot.Magnetised Pmedia.Dot.Up, "mwb 1", Pmedia.Dot.Magnetised Pmedia.Dot.Up);
            (Pmedia.Dot.Magnetised Pmedia.Dot.Up, "ewb", Pmedia.Dot.Heated);
            (Pmedia.Dot.Magnetised Pmedia.Dot.Down, "mwb 0", Pmedia.Dot.Magnetised Pmedia.Dot.Down);
            (Pmedia.Dot.Magnetised Pmedia.Dot.Down, "mwb 1", Pmedia.Dot.Magnetised Pmedia.Dot.Up);
            (Pmedia.Dot.Magnetised Pmedia.Dot.Down, "ewb", Pmedia.Dot.Heated);
            (Pmedia.Dot.Heated, "mwb 0", Pmedia.Dot.Heated);
            (Pmedia.Dot.Heated, "mwb 1", Pmedia.Dot.Heated);
            (Pmedia.Dot.Heated, "ewb", Pmedia.Dot.Heated);
          ]
        in
        List.iter
          (fun (s, op, s') ->
            Alcotest.(check bool)
              (Format.asprintf "%a --%s--> %a" Pmedia.Dot.pp s op Pmedia.Dot.pp s')
              true
              (List.exists
                 (fun (a, b, c) ->
                   Pmedia.Dot.equal a s && String.equal b op && Pmedia.Dot.equal c s')
                 Pmedia.Dot.transition_table))
          expect;
        Alcotest.(check int) "exactly 9 edges" 9
          (List.length Pmedia.Dot.transition_table));
  ]

let heated_absorbing =
  QCheck.Test.make ~name:"Heated is absorbing" ~count:100 dot_state (fun s ->
      Pmedia.Dot.equal (Pmedia.Dot.transition_ewb s) Pmedia.Dot.Heated
      && Pmedia.Dot.equal
           (Pmedia.Dot.transition_mwb Pmedia.Dot.Heated Pmedia.Dot.Up)
           Pmedia.Dot.Heated)

let mwb_sets_direction =
  QCheck.Test.make ~name:"mwb sets direction on magnetised dots" ~count:100
    (QCheck.pair dot_state QCheck.bool) (fun (s, up) ->
      let d = Pmedia.Dot.of_bool up in
      match Pmedia.Dot.transition_mwb s d with
      | Pmedia.Dot.Magnetised d' -> Pmedia.Dot.equal_direction d d'
      | Pmedia.Dot.Heated -> Pmedia.Dot.is_heated s)

(* {1 Medium matrix} *)

let medium_cases =
  [
    Alcotest.test_case "virgin medium all Down, none heated" `Quick (fun () ->
        let m = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:8 ~cols:8) in
        for i = 0 to 63 do
          Alcotest.(check bool) "down" true
            (Pmedia.Dot.equal (Pmedia.Medium.get m i)
               (Pmedia.Dot.Magnetised Pmedia.Dot.Down))
        done;
        Alcotest.(check int) "heated" 0 (Pmedia.Medium.heated_count m));
    Alcotest.test_case "out-of-range access raises" `Quick (fun () ->
        let m = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:4 ~cols:4) in
        Alcotest.check_raises "get"
          (Invalid_argument "Medium: dot index out of range") (fun () ->
            ignore (Pmedia.Medium.get m 16)));
    Alcotest.test_case "neighbours of corner, edge, interior" `Quick (fun () ->
        let m = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:4 ~cols:4) in
        Alcotest.(check (list int)) "corner" [ 1; 4 ] (List.sort compare (Pmedia.Medium.neighbours m 0));
        Alcotest.(check (list int)) "interior" [ 1; 4; 6; 9 ]
          (List.sort compare (Pmedia.Medium.neighbours m 5));
        Alcotest.(check (list int)) "edge" [ 2; 7 ]
          (List.sort compare (Pmedia.Medium.neighbours m 3)));
    Alcotest.test_case "defect rate places defects deterministically" `Quick
      (fun () ->
        let cfg =
          { (Pmedia.Medium.default_config ~rows:100 ~cols:100) with
            Pmedia.Medium.defect_rate = 0.05 }
        in
        let m1 = Pmedia.Medium.create cfg and m2 = Pmedia.Medium.create cfg in
        let count m =
          let n = ref 0 in
          for i = 0 to Pmedia.Medium.size m - 1 do
            if Pmedia.Medium.is_defect m i then incr n
          done;
          !n
        in
        let c1 = count m1 in
        Alcotest.(check int) "same seed, same defects" c1 (count m2);
        Alcotest.(check bool) "rate roughly honoured" true (c1 > 300 && c1 < 700));
    Alcotest.test_case "capacity equals dot count at 1 bit/dot" `Quick
      (fun () ->
        let m = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:10 ~cols:10) in
        Alcotest.(check bool) "≈100 bits" true
          (Float.abs (Pmedia.Medium.capacity_bits m -. 100.) < 1.));
  ]

let set_get_roundtrip =
  QCheck.Test.make ~name:"set/get roundtrip at any index" ~count:300
    QCheck.(pair (int_range 0 255) dot_state)
    (fun (i, s) ->
      let m = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:16 ~cols:16) in
      Pmedia.Medium.set m i s;
      Pmedia.Dot.equal (Pmedia.Medium.get m i) s)

let heated_count_tracks =
  QCheck.Test.make ~name:"heated_count tracks set operations" ~count:100
    QCheck.(small_list (int_range 0 63))
    (fun idxs ->
      let m = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:8 ~cols:8) in
      List.iter (fun i -> Pmedia.Medium.set m i Pmedia.Dot.Heated) idxs;
      let distinct = List.sort_uniq compare idxs in
      Pmedia.Medium.heated_count m = List.length distinct)

(* {1 Bit operations} *)

let make_ctx () =
  Pmedia.Bitops.make
    (Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:16 ~cols:16))

let bitops_cases =
  [
    Alcotest.test_case "mwb then mrb reads back" `Quick (fun () ->
        let ctx = make_ctx () in
        Pmedia.Bitops.mwb ctx 3 Pmedia.Dot.Up;
        Alcotest.(check bool) "up" true
          (Pmedia.Dot.equal_direction (Pmedia.Bitops.mrb ctx 3) Pmedia.Dot.Up);
        Pmedia.Bitops.mwb ctx 3 Pmedia.Dot.Down;
        Alcotest.(check bool) "down" true
          (Pmedia.Dot.equal_direction (Pmedia.Bitops.mrb ctx 3) Pmedia.Dot.Down));
    Alcotest.test_case "ewb is irreversible; mwb has no effect after" `Quick
      (fun () ->
        let ctx = make_ctx () in
        Pmedia.Bitops.ewb ctx 7;
        Pmedia.Bitops.mwb ctx 7 Pmedia.Dot.Up;
        Alcotest.(check bool) "still heated" true
          (Pmedia.Dot.is_heated (Pmedia.Medium.get (Pmedia.Bitops.medium ctx) 7)));
    Alcotest.test_case "erb detects a heated dot (with enough cycles)" `Quick
      (fun () ->
        let ctx = make_ctx () in
        Pmedia.Bitops.ewb ctx 5;
        Alcotest.(check bool) "heated detected" true
          (Pmedia.Bitops.erb ~cycles:30 ctx 5));
    Alcotest.test_case "erb on healthy dot reports unheated and restores data"
      `Quick (fun () ->
        let ctx = make_ctx () in
        Pmedia.Bitops.mwb ctx 9 Pmedia.Dot.Up;
        Alcotest.(check bool) "not heated" false (Pmedia.Bitops.erb ~cycles:8 ctx 9);
        Alcotest.(check bool) "data intact" true
          (Pmedia.Dot.equal_direction (Pmedia.Bitops.mrb ctx 9) Pmedia.Dot.Up));
    Alcotest.test_case "erb sequence costs 5 primitive ops per cycle" `Quick
      (fun () ->
        let ctx = make_ctx () in
        Pmedia.Bitops.mwb ctx 2 Pmedia.Dot.Down;
        Pmedia.Bitops.reset_counters ctx;
        ignore (Pmedia.Bitops.erb ~cycles:1 ctx 2);
        let c = Pmedia.Bitops.counters ctx in
        Alcotest.(check int) "5 ops (3 reads + 2 writes)" 5
          (Pmedia.Bitops.primitive_ops c);
        Alcotest.(check int) "3 reads" 3 c.Pmedia.Bitops.mrb;
        Alcotest.(check int) "2 writes" 2 c.Pmedia.Bitops.mwb);
    Alcotest.test_case "mrb of heated dot is a coin flip" `Quick (fun () ->
        let ctx = make_ctx () in
        Pmedia.Bitops.ewb ctx 0;
        let ups = ref 0 in
        for _ = 1 to 400 do
          if Pmedia.Dot.equal_direction (Pmedia.Bitops.mrb ctx 0) Pmedia.Dot.Up
          then incr ups
        done;
        Alcotest.(check bool) "roughly balanced" true (!ups > 120 && !ups < 280));
    Alcotest.test_case "defective dot reads inverted" `Quick (fun () ->
        let cfg =
          { (Pmedia.Medium.default_config ~rows:32 ~cols:32) with
            Pmedia.Medium.defect_rate = 0.2 }
        in
        let medium = Pmedia.Medium.create cfg in
        let ctx = Pmedia.Bitops.make medium in
        (* find a defect *)
        let defect = ref (-1) in
        for i = 0 to Pmedia.Medium.size medium - 1 do
          if !defect < 0 && Pmedia.Medium.is_defect medium i then defect := i
        done;
        Alcotest.(check bool) "found a defect" true (!defect >= 0);
        Pmedia.Bitops.mwb ctx !defect Pmedia.Dot.Up;
        Alcotest.(check bool) "reads inverted" true
          (Pmedia.Dot.equal_direction (Pmedia.Bitops.mrb ctx !defect) Pmedia.Dot.Down));
    Alcotest.test_case "aggressive thermal profile causes collateral damage"
      `Quick (fun () ->
        (* A low-mixing-temperature material under an overdriven pulse
           with hardly any substrate heat-sinking: the neighbour reaches
           ~1000 C and its interfaces mix within the pulse. *)
        let cfg =
          { (Pmedia.Medium.default_config ~rows:32 ~cols:32) with
            Pmedia.Medium.material = Physics.Constants.co_pt_low_temp }
        in
        let medium = Pmedia.Medium.create cfg in
        let profile =
          {
            (Physics.Thermal.default_profile cfg.Pmedia.Medium.geometry) with
            Physics.Thermal.peak_temp_c = 5000.;
            decay_length = 50. *. cfg.Pmedia.Medium.geometry.Physics.Constants.pitch;
          }
        in
        let ctx = Pmedia.Bitops.make ~profile medium in
        for i = 100 to 140 do
          Pmedia.Bitops.ewb ctx i
        done;
        let c = Pmedia.Bitops.counters ctx in
        Alcotest.(check bool) "collateral > 0" true (c.Pmedia.Bitops.collateral > 0));
    Alcotest.test_case "read_ber flips healthy reads occasionally" `Quick
      (fun () ->
        let medium = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:16 ~cols:16) in
        let ctx = Pmedia.Bitops.make ~read_ber:0.2 medium in
        Pmedia.Bitops.mwb ctx 0 Pmedia.Dot.Up;
        let flips = ref 0 in
        for _ = 1 to 500 do
          if Pmedia.Dot.equal_direction (Pmedia.Bitops.mrb ctx 0) Pmedia.Dot.Down
          then incr flips
        done;
        Alcotest.(check bool) "~20% flips" true (!flips > 50 && !flips < 160));
  ]

let erb_false_negative_rate =
  Alcotest.test_case "erb misses a heated dot ~25% per single cycle (paper flaw)"
    `Quick (fun () ->
      let ctx = make_ctx () in
      Pmedia.Bitops.ewb ctx 11;
      let missed = ref 0 in
      for _ = 1 to 1000 do
        if not (Pmedia.Bitops.erb ~cycles:1 ctx 11) then incr missed
      done;
      (* P(miss) = 1/4: both verification reads agree by luck. *)
      Alcotest.(check bool) "20%..31%" true (!missed > 200 && !missed < 310))

let () =
  Alcotest.run "medium"
    [
      ("dot", dot_cases @ List.map qtest [ heated_absorbing; mwb_sets_direction ]);
      ("matrix", medium_cases @ List.map qtest [ set_get_roundtrip; heated_count_tracks ]);
      ("bitops", bitops_cases @ [ erb_false_negative_rate ]);
    ]
