(* Physics models: the Figure 7/8/9 anchors, thermal model, MFM channel
   and Stoner–Wohlfarth switching. *)

let qtest = QCheck_alcotest.to_alcotest
let m = Physics.Constants.co_pt
let lt = Physics.Constants.co_pt_low_temp

let anisotropy_cases =
  [
    Alcotest.test_case "as-grown K is 80 kJ/m^3 (paper)" `Quick (fun () ->
        Alcotest.(check (float 1.)) "K0" 80e3 (Physics.Anisotropy.k_as_grown m));
    Alcotest.test_case "K maintained up to 500 C (paper)" `Quick (fun () ->
        List.iter
          (fun t ->
            let k = Physics.Anisotropy.k_after_anneal m ~temp_c:t in
            Alcotest.(check bool)
              (Printf.sprintf "K(%.0f) within 2%%" t)
              true
              (k > 0.98 *. 80e3))
          [ 25.; 100.; 200.; 300.; 400.; 500. ]);
    Alcotest.test_case "K collapses by 700 C (paper)" `Quick (fun () ->
        Alcotest.(check bool) "K(700) < 5%" true
          (Physics.Anisotropy.k_after_anneal m ~temp_c:700. < 0.05 *. 80e3));
    Alcotest.test_case "destruction threshold just above 600 C" `Quick
      (fun () ->
        let t = Physics.Anisotropy.destruction_threshold_c m in
        Alcotest.(check bool) "in (550, 700)" true (t > 550. && t < 700.));
    Alcotest.test_case "low-temperature stack thresholds near 300 C" `Quick
      (fun () ->
        let t = Physics.Anisotropy.destruction_threshold_c lt in
        Alcotest.(check bool) "in (250, 400)" true (t > 250. && t < 400.));
    Alcotest.test_case "easy axis: perpendicular, then tilted at 700 C" `Quick
      (fun () ->
        Alcotest.(check bool) "as-grown perpendicular" true
          (Physics.Anisotropy.equal_axis
             (Physics.Anisotropy.easy_axis_after_anneal m ~temp_c:25.)
             Physics.Anisotropy.Perpendicular);
        Alcotest.(check bool) "700 C tilted (fct CoPt, Fig. 9 discussion)" true
          (Physics.Anisotropy.equal_axis
             (Physics.Anisotropy.easy_axis_after_anneal m ~temp_c:700.)
             Physics.Anisotropy.Tilted));
  ]

let k_monotone =
  QCheck.Test.make ~name:"K(T) non-increasing in T" ~count:200
    QCheck.(pair (float_range 0. 900.) (float_range 0. 900.))
    (fun (t1, t2) ->
      let lo = Float.min t1 t2 and hi = Float.max t1 t2 in
      Physics.Anisotropy.k_after_anneal m ~temp_c:lo
      >= Physics.Anisotropy.k_after_anneal m ~temp_c:hi -. 1e-9)

let mixing_bounds =
  QCheck.Test.make ~name:"mixing fraction stays in [0,1]" ~count:200
    QCheck.(pair (float_range (-50.) 2000.) (float_range 0. 1e6))
    (fun (t, d) ->
      let f = Physics.Anisotropy.mixing_fraction m ~temp_c:t ~duration:d in
      f >= 0. && f <= 1.)

let thermal_cases =
  [
    Alcotest.test_case "default pulse destroys the target dot" `Quick (fun () ->
        let p = Physics.Thermal.default_profile Physics.Constants.dot_100nm in
        Alcotest.(check bool) "destroyed" true (Physics.Thermal.target_destroyed m p));
    Alcotest.test_case "default pulse spares the neighbour" `Quick (fun () ->
        let g = Physics.Constants.dot_100nm in
        let p = Physics.Thermal.default_profile g in
        Alcotest.(check bool) "p < 1e-6" true
          (Physics.Thermal.neighbour_damage_probability m p
             ~pitch:g.Physics.Constants.pitch
          < 1e-6));
    Alcotest.test_case "poor heat sinking endangers the neighbour" `Quick
      (fun () ->
        let g = Physics.Constants.dot_100nm in
        let p =
          {
            (Physics.Thermal.default_profile g) with
            Physics.Thermal.peak_temp_c = 4000.;
            decay_length = 20. *. g.Physics.Constants.pitch;
          }
        in
        Alcotest.(check bool) "low-temp material neighbour at risk" true
          (Physics.Thermal.neighbour_damage_probability lt p
             ~pitch:g.Physics.Constants.pitch
          > 0.01));
    Alcotest.test_case "pulse energy positive and tiny" `Quick (fun () ->
        let p = Physics.Thermal.default_profile Physics.Constants.dot_100nm in
        let e = Physics.Thermal.pulse_energy p in
        Alcotest.(check bool) "0 < E < 1e-6 J" true (e > 0. && e < 1e-6));
  ]

let temperature_decreasing =
  QCheck.Test.make ~name:"temperature decreases with distance" ~count:200
    QCheck.(pair (float_range 1e-9 1e-6) (float_range 1e-9 1e-6))
    (fun (r1, r2) ->
      let p = Physics.Thermal.default_profile Physics.Constants.dot_100nm in
      let lo = Float.min r1 r2 and hi = Float.max r1 r2 in
      Physics.Thermal.temperature_at p lo >= Physics.Thermal.temperature_at p hi -. 1e-9)

let xrd_cases =
  [
    Alcotest.test_case "superlattice peak near 8 degrees (paper)" `Quick
      (fun () ->
        let peak = Physics.Xrd.superlattice_peak_deg m in
        Alcotest.(check bool) "7..9 deg" true (peak > 7. && peak < 9.));
    Alcotest.test_case "Fig 8: low-angle peak vanishes after 700 C" `Quick
      (fun () ->
        let peak = Physics.Xrd.superlattice_peak_deg m in
        let amp anneal =
          Physics.Xrd.peak_amplitude
            (Physics.Xrd.low_angle_scan m ~anneal_temp_c:anneal)
            ~near_deg:peak ~window:1.0
        in
        Alcotest.(check bool) "as-grown strong" true (amp None > 100.);
        Alcotest.(check bool) "annealed gone" true
          (amp (Some 700.) < 0.02 *. amp None));
    Alcotest.test_case "Fig 9: CoPt(111) appears at 41.7 after 700 C" `Quick
      (fun () ->
        let amp anneal =
          Physics.Xrd.peak_amplitude
            (Physics.Xrd.high_angle_scan m ~anneal_temp_c:anneal)
            ~near_deg:Physics.Xrd.copt_111_peak_deg ~window:1.5
        in
        Alcotest.(check bool) "annealed strong" true (amp (Some 700.) > 300.);
        Alcotest.(check bool) "as-grown weak" true
          (amp None < 0.2 *. amp (Some 700.)));
    Alcotest.test_case "bilayer period recoverable from peak (0.6nm/layer)"
      `Quick (fun () ->
        let peak = Physics.Xrd.superlattice_peak_deg m in
        let period = Physics.Xrd.bilayer_period_from_peak ~peak_deg:peak in
        Alcotest.(check bool) "within 2%" true
          (Float.abs (period -. m.Physics.Constants.bilayer_period)
          < 0.02 *. m.Physics.Constants.bilayer_period));
    Alcotest.test_case "500 C anneal keeps the superlattice peak" `Quick
      (fun () ->
        let peak = Physics.Xrd.superlattice_peak_deg m in
        let amp anneal =
          Physics.Xrd.peak_amplitude
            (Physics.Xrd.low_angle_scan m ~anneal_temp_c:anneal)
            ~near_deg:peak ~window:1.0
        in
        Alcotest.(check bool) "survives" true (amp (Some 500.) > 0.9 *. amp None));
  ]

let mfm_cases =
  [
    Alcotest.test_case "healthy dots detect correctly at 200nm pitch" `Quick
      (fun () ->
        let g = Physics.Constants.dot_200nm in
        let c = Physics.Mfm.default_channel in
        let rng = Sim.Prng.create 5 in
        let dots = Array.init 16 (fun i -> if i mod 3 = 0 then Physics.Mfm.Up else Physics.Mfm.Down) in
        Array.iteri
          (fun i expected ->
            let got = Physics.Mfm.detect c g ~rng ~dots i in
            Alcotest.(check bool) (Printf.sprintf "dot %d" i) true (got = expected))
          dots);
    Alcotest.test_case "destroyed dot gives near-zero signal" `Quick (fun () ->
        let g = Physics.Constants.dot_200nm in
        let c = { Physics.Mfm.default_channel with Physics.Mfm.noise_sigma = 0. } in
        let rng = Sim.Prng.create 5 in
        let dots = [| Physics.Mfm.Destroyed |] in
        Alcotest.(check bool) "small" true
          (Float.abs (Physics.Mfm.read_dot c g ~rng ~dots 0) < 0.1));
    Alcotest.test_case "raw BER is low at 200nm" `Quick (fun () ->
        let g = Physics.Constants.dot_200nm in
        let rng = Sim.Prng.create 99 in
        let ber = Physics.Mfm.ber Physics.Mfm.default_channel g ~rng ~trials:2000 in
        Alcotest.(check bool) "< 1%" true (ber < 0.01));
    Alcotest.test_case "higher flying height broadens the peak" `Quick
      (fun () ->
        let g = Physics.Constants.dot_100nm in
        let near = { Physics.Mfm.default_channel with Physics.Mfm.flying_height = 10e-9 } in
        let far = { Physics.Mfm.default_channel with Physics.Mfm.flying_height = 60e-9 } in
        Alcotest.(check bool) "wider" true
          (Physics.Mfm.peak_width far g > Physics.Mfm.peak_width near g));
  ]

let switching_cases =
  [
    Alcotest.test_case "astroid minimum at 45 degrees" `Quick (fun () ->
        let k = m.Physics.Constants.k_interface in
        let h45 = Physics.Switching.switching_field m ~k ~psi:(Float.pi /. 4.) in
        let h0 = Physics.Switching.switching_field m ~k ~psi:1e-6 in
        let h90 = Physics.Switching.switching_field m ~k ~psi:(Float.pi /. 2. -. 1e-6) in
        Alcotest.(check bool) "h45 < h0" true (h45 < h0);
        Alcotest.(check bool) "h45 < h90" true (h45 < h90);
        Alcotest.(check (float 1.)) "h45 = Hk/2" (Physics.Switching.anisotropy_field m ~k /. 2.) h45);
    Alcotest.test_case "destroyed dot cannot be written" `Quick (fun () ->
        Alcotest.(check bool) "no write" false
          (Physics.Switching.write_succeeds m ~k:0. ~field:1e9 ~psi:0.3));
    Alcotest.test_case "healthy dot thermally stable for years" `Quick
      (fun () ->
        Alcotest.(check bool) "delta > 40" true
          (Physics.Switching.retains m Physics.Constants.dot_100nm
             ~k:m.Physics.Constants.k_interface ~temp_c:25.));
    Alcotest.test_case "degraded dot loses retention" `Quick (fun () ->
        Alcotest.(check bool) "delta < 40" false
          (Physics.Switching.retains m Physics.Constants.dot_100nm ~k:100.
             ~temp_c:25.));
  ]

let constants_cases =
  [
    Alcotest.test_case "100nm pitch gives 10 Gbit/cm^2 (paper)" `Quick
      (fun () ->
        Alcotest.(check bool) "within 1%" true
          (Float.abs
             (Physics.Constants.areal_density_bits_per_cm2 Physics.Constants.dot_100nm
             -. 1e10)
          < 1e8));
    Alcotest.test_case "temperature conversions" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "0C" 273.15 (Physics.Constants.celsius_to_kelvin 0.);
        Alcotest.(check (float 1e-9)) "roundtrip" 123.
          (Physics.Constants.kelvin_to_celsius (Physics.Constants.celsius_to_kelvin 123.)));
  ]

let () =
  Alcotest.run "physics"
    [
      ("anisotropy", anisotropy_cases @ List.map qtest [ k_monotone; mixing_bounds ]);
      ("thermal", thermal_cases @ [ qtest temperature_decreasing ]);
      ("xrd", xrd_cases);
      ("mfm", mfm_cases);
      ("switching", switching_cases);
      ("constants", constants_cases);
    ]
