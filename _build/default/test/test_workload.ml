(* Workload generators and the DB-snapshot / retention runs. *)

let qtest = QCheck_alcotest.to_alcotest

let zipf_cases =
  [
    Alcotest.test_case "theta=0 is roughly uniform" `Quick (fun () ->
        let z = Workload.Zipf.create ~n:10 ~theta:0. in
        let rng = Sim.Prng.create 1 in
        let counts = Array.make 10 0 in
        for _ = 1 to 10000 do
          let i = Workload.Zipf.sample z rng in
          counts.(i) <- counts.(i) + 1
        done;
        Array.iter
          (fun c -> Alcotest.(check bool) "within 30% of uniform" true (c > 700 && c < 1300))
          counts);
    Alcotest.test_case "theta=1 skews to the head" `Quick (fun () ->
        let z = Workload.Zipf.create ~n:100 ~theta:1.0 in
        let rng = Sim.Prng.create 2 in
        let head = ref 0 in
        for _ = 1 to 5000 do
          if Workload.Zipf.sample z rng < 10 then incr head
        done;
        Alcotest.(check bool) "top-10 majority" true (!head > 2500));
    Alcotest.test_case "pmf sums to 1" `Quick (fun () ->
        let z = Workload.Zipf.create ~n:50 ~theta:0.9 in
        let total = ref 0. in
        for i = 0 to 49 do
          total := !total +. Workload.Zipf.pmf z i
        done;
        Alcotest.(check (float 1e-9)) "1" 1. !total);
  ]

let zipf_in_range =
  QCheck.Test.make ~name:"samples always in range" ~count:200
    QCheck.(pair (int_range 1 100) (float_range 0. 1.5))
    (fun (n, theta) ->
      let z = Workload.Zipf.create ~n ~theta in
      let rng = Sim.Prng.create 7 in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Workload.Zipf.sample z rng in
        if v < 0 || v >= n then ok := false
      done;
      !ok)

let dbwork_cases =
  [
    Alcotest.test_case "generator emits the configured structure" `Quick
      (fun () ->
        let cfg =
          { Workload.Dbwork.default_config with Workload.Dbwork.snapshots = 3 }
        in
        let ops = Workload.Dbwork.generate cfg in
        let count p = List.length (List.filter p ops) in
        Alcotest.(check int) "3 begins" 3
          (count (function Workload.Dbwork.Snap_begin _ -> true | _ -> false));
        Alcotest.(check int) "3 freezes" 3
          (count (function Workload.Dbwork.Snap_freeze _ -> true | _ -> false));
        Alcotest.(check bool) "updates interleaved within snapshots" true
          (let rec check in_snap = function
             | [] -> true
             | Workload.Dbwork.Snap_begin _ :: rest -> check true rest
             | Workload.Dbwork.Snap_freeze _ :: rest -> check false rest
             | Workload.Dbwork.Update _ :: rest -> check in_snap rest
             | Workload.Dbwork.Snap_chunk _ :: rest -> in_snap && check in_snap rest
           in
           check false ops));
    Alcotest.test_case "generator is deterministic per seed" `Quick (fun () ->
        let cfg = Workload.Dbwork.default_config in
        Alcotest.(check bool) "same" true
          (Workload.Dbwork.generate cfg = Workload.Dbwork.generate cfg));
    Alcotest.test_case "small run verifies all snapshots" `Quick (fun () ->
        let cfg =
          {
            Workload.Dbwork.default_config with
            Workload.Dbwork.snapshots = 2;
            updates_between_snapshots = 60;
            snapshot_pages = 16;
          }
        in
        let r =
          Workload.Dbwork.run ~clustering:true
            ~device:(Sero.Device.default_config ~n_blocks:4096 ~line_exp:3 ())
            cfg
        in
        Alcotest.(check int) "no bad lines" 0 r.Workload.Dbwork.snap_verdicts_bad;
        Alcotest.(check bool) "some verified" true (r.Workload.Dbwork.snap_verdicts_ok > 0));
  ]

let retention_cases =
  [
    Alcotest.test_case "retention run stores and audits every class" `Quick
      (fun () ->
        let r =
          Workload.Retention.run
            ~device:(Sero.Device.default_config ~n_blocks:4096 ~line_exp:3 ())
            Workload.Retention.default_config
        in
        let total =
          List.fold_left
            (fun a c -> a + c.Workload.Retention.records_stored)
            0 r.Workload.Retention.per_class
        in
        Alcotest.(check int) "all records" 300 total;
        List.iter
          (fun c ->
            Alcotest.(check bool)
              (Printf.sprintf "class %d audits clean" c.Workload.Retention.class_id)
              true c.Workload.Retention.verdict_ok)
          r.Workload.Retention.per_class);
  ]

let trace_cases =
  [
    Alcotest.test_case "encode/decode roundtrip" `Quick (fun () ->
        let ops =
          [
            Workload.Trace.Mkdir "/d";
            Workload.Trace.Create { path = "/d/f"; heat_group = 3 };
            Workload.Trace.Write { path = "/d/f"; offset = 512; data = "abc" };
            Workload.Trace.Append { path = "/d/f"; data = String.make 600 'z' };
            Workload.Trace.Heat "/d/f";
            Workload.Trace.Sync;
            Workload.Trace.Unlink "/d/f";
          ]
        in
        match Workload.Trace.decode (Workload.Trace.encode ops) with
        | Ok got -> Alcotest.(check bool) "equal" true (got = ops)
        | Error e -> Alcotest.failf "decode: %s" e);
    Alcotest.test_case "garbage is rejected" `Quick (fun () ->
        match Workload.Trace.decode "not a trace" with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "accepted");
    Alcotest.test_case "replay is deterministic: identical media" `Quick
      (fun () ->
        let mk () =
          let dev =
            Sero.Device.create
              (Sero.Device.default_config ~n_blocks:1024 ~line_exp:3 ())
          in
          (dev, Lfs.Fs.format dev)
        in
        (* Record a workload through the recorder on one instance. *)
        let dev1, fs1 = mk () in
        let exec, captured = Workload.Trace.recorder fs1 in
        let ok = function Ok () -> () | Error e -> Alcotest.failf "rec: %s" e in
        ok (exec (Workload.Trace.Create { path = "/a"; heat_group = 1 }));
        for i = 0 to 9 do
          ok (exec (Workload.Trace.Write
                 { path = "/a"; offset = 512 * i; data = String.make 512 (Char.chr (65 + i)) }))
        done;
        ok (exec (Workload.Trace.Heat "/a"));
        ok (exec (Workload.Trace.Create { path = "/b"; heat_group = 0 }));
        ok (exec (Workload.Trace.Append { path = "/b"; data = "tail" }));
        ok (exec Workload.Trace.Sync);
        let trace = captured () in
        (* Replay onto a fresh instance: media must be bit-identical. *)
        let dev2, fs2 = mk () in
        let outcome = Workload.Trace.replay fs2 trace in
        Alcotest.(check int) "all applied" (List.length trace) outcome.Workload.Trace.applied;
        let digest dev =
          let medium = Probe.Pdevice.medium (Sero.Device.pdevice dev) in
          let buf = Buffer.create 4096 in
          for i = 0 to Pmedia.Medium.size medium - 1 do
            Buffer.add_char buf
              (match Pmedia.Medium.get medium i with
              | Pmedia.Dot.Magnetised Pmedia.Dot.Up -> '1'
              | Pmedia.Dot.Magnetised Pmedia.Dot.Down -> '0'
              | Pmedia.Dot.Heated -> 'H')
          done;
          Hash.Sha256.to_hex (Hash.Sha256.digest_string (Buffer.contents buf))
        in
        Alcotest.(check string) "bit-identical media" (digest dev1) (digest dev2));
    Alcotest.test_case "replay counts refusals without dying" `Quick (fun () ->
        let dev =
          Sero.Device.create (Sero.Device.default_config ~n_blocks:512 ~line_exp:3 ())
        in
        let fs = Lfs.Fs.format dev in
        let outcome =
          Workload.Trace.replay fs
            [
              Workload.Trace.Create { path = "/x"; heat_group = 0 };
              Workload.Trace.Write { path = "/x"; offset = 0; data = "v" };
              Workload.Trace.Heat "/x";
              Workload.Trace.Write { path = "/x"; offset = 0; data = "w" };
              Workload.Trace.Unlink "/x";
            ]
        in
        Alcotest.(check int) "applied" 3 outcome.Workload.Trace.applied;
        Alcotest.(check int) "refused" 2 outcome.Workload.Trace.refused);
  ]

let () =
  Alcotest.run "workload"
    [
      ("zipf", zipf_cases @ [ qtest zipf_in_range ]);
      ("dbwork", dbwork_cases);
      ("retention", retention_cases);
      ("trace", trace_cases);
    ]
