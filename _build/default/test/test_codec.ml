(* Codec layer: Manchester cells, CRC-32, GF(256), Reed–Solomon,
   sector framing, WOM code, binary IO. *)

let qtest = QCheck_alcotest.to_alcotest

(* {1 Manchester} *)

let heated_of_array a i = a.(i)

let manchester_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:300
    QCheck.(string_of_size Gen.(1 -- 64))
    (fun payload ->
      let dots = Codec.Manchester.encode payload in
      let d =
        Codec.Manchester.decode ~heated:(heated_of_array dots)
          ~n_bytes:(String.length payload)
      in
      Codec.Manchester.is_clean d && String.equal d.Codec.Manchester.payload payload)

let manchester_spreading =
  QCheck.Test.make ~name:"never more than 2 adjacent heated dots" ~count:300
    QCheck.(string_of_size Gen.(1 -- 64))
    (fun payload ->
      Codec.Manchester.max_adjacent_heated (Codec.Manchester.encode payload) <= 2)

let manchester_density =
  QCheck.Test.make ~name:"exactly one heated dot per cell" ~count:300
    QCheck.(string_of_size Gen.(1 -- 64))
    (fun payload ->
      let dots = Codec.Manchester.encode payload in
      let heated = Array.fold_left (fun a h -> if h then a + 1 else a) 0 dots in
      heated = 8 * String.length payload)

let manchester_tamper =
  QCheck.Test.make ~name:"heating any unheated dot is detected" ~count:300
    QCheck.(pair (string_of_size Gen.(1 -- 32)) small_nat)
    (fun (payload, idx) ->
      let dots = Codec.Manchester.encode payload in
      (* Heat one currently-unheated dot: its cell becomes HH. *)
      let unheated =
        Array.to_list (Array.mapi (fun i h -> (i, h)) dots)
        |> List.filter_map (fun (i, h) -> if h then None else Some i)
      in
      let victim = List.nth unheated (idx mod List.length unheated) in
      dots.(victim) <- true;
      let d =
        Codec.Manchester.decode ~heated:(heated_of_array dots)
          ~n_bytes:(String.length payload)
      in
      List.length d.Codec.Manchester.tampered_cells = 1)

let manchester_cases =
  [
    Alcotest.test_case "blank area decodes as all-blank cells" `Quick (fun () ->
        let d =
          Codec.Manchester.decode ~heated:(fun _ -> false) ~n_bytes:4
        in
        Alcotest.(check int) "blank cells" 32
          (List.length d.Codec.Manchester.blank_cells));
    Alcotest.test_case "fully heated area is all-tampered" `Quick (fun () ->
        let d = Codec.Manchester.decode ~heated:(fun _ -> true) ~n_bytes:2 in
        Alcotest.(check int) "tampered" 16
          (List.length d.Codec.Manchester.tampered_cells));
    Alcotest.test_case "encoded_length" `Quick (fun () ->
        Alcotest.(check int) "16 dots per byte" 160 (Codec.Manchester.encoded_length 10));
    Alcotest.test_case "cell convention: 0 -> HU, 1 -> UH (Fig. 3)" `Quick
      (fun () ->
        let dots = Codec.Manchester.encode "\x80" in
        (* MSB of 0x80 is 1 -> first cell UH; next bit 0 -> HU. *)
        Alcotest.(check (pair bool bool)) "cell 0 = UH" (false, true)
          (dots.(0), dots.(1));
        Alcotest.(check (pair bool bool)) "cell 1 = HU" (true, false)
          (dots.(2), dots.(3)));
  ]

(* {1 CRC-32} *)

let crc_cases =
  [
    Alcotest.test_case "known value: \"123456789\"" `Quick (fun () ->
        Alcotest.(check int32) "check value" 0xCBF43926l
          (Codec.Crc32.string "123456789"));
    Alcotest.test_case "empty string" `Quick (fun () ->
        Alcotest.(check int32) "zero" 0l (Codec.Crc32.string ""));
    Alcotest.test_case "incremental equals one-shot" `Quick (fun () ->
        let a = Codec.Crc32.string "hello world" in
        let b = Codec.Crc32.string ~crc:(Codec.Crc32.string "hello ") "world" in
        Alcotest.(check int32) "same" a b);
  ]

let crc_detects_flip =
  QCheck.Test.make ~name:"single byte flip changes the CRC" ~count:300
    QCheck.(pair (string_of_size Gen.(1 -- 100)) small_nat)
    (fun (s, i) ->
      let i = i mod String.length s in
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5A));
      Codec.Crc32.string s <> Codec.Crc32.string (Bytes.to_string b))

(* {1 GF(256)} *)

let byte = QCheck.int_range 0 255
let nonzero = QCheck.int_range 1 255

let gf_tests =
  [
    QCheck.Test.make ~name:"mul commutative" ~count:500 (QCheck.pair byte byte)
      (fun (a, b) -> Codec.Gf256.mul a b = Codec.Gf256.mul b a);
    QCheck.Test.make ~name:"mul associative" ~count:500
      (QCheck.triple byte byte byte) (fun (a, b, c) ->
        Codec.Gf256.mul a (Codec.Gf256.mul b c)
        = Codec.Gf256.mul (Codec.Gf256.mul a b) c);
    QCheck.Test.make ~name:"distributive over add" ~count:500
      (QCheck.triple byte byte byte) (fun (a, b, c) ->
        Codec.Gf256.mul a (Codec.Gf256.add b c)
        = Codec.Gf256.add (Codec.Gf256.mul a b) (Codec.Gf256.mul a c));
    QCheck.Test.make ~name:"inverse" ~count:500 nonzero (fun a ->
        Codec.Gf256.mul a (Codec.Gf256.inv a) = 1);
    QCheck.Test.make ~name:"div is mul by inverse" ~count:500
      (QCheck.pair byte nonzero) (fun (a, b) ->
        Codec.Gf256.div a b = Codec.Gf256.mul a (Codec.Gf256.inv b));
    QCheck.Test.make ~name:"exp/log inverse" ~count:500 nonzero (fun a ->
        Codec.Gf256.exp (Codec.Gf256.log a) = a);
    QCheck.Test.make ~name:"pow matches repeated mul" ~count:200
      (QCheck.pair byte (QCheck.int_range 0 10)) (fun (a, n) ->
        let rec naive acc k = if k = 0 then acc else naive (Codec.Gf256.mul acc a) (k - 1) in
        Codec.Gf256.pow a n = if n = 0 then 1 else naive 1 n);
  ]

(* {1 Reed–Solomon} *)

let rs = Codec.Rs.make ~nparity:24

let corrupt rng cw nerr =
  (* Flip [nerr] distinct byte positions. *)
  let n = Bytes.length cw in
  let chosen = Hashtbl.create 8 in
  let flipped = ref 0 in
  while !flipped < nerr do
    let i = Sim.Prng.int rng n in
    if not (Hashtbl.mem chosen i) then begin
      Hashtbl.replace chosen i ();
      Bytes.set cw i
        (Char.chr (Char.code (Bytes.get cw i) lxor (1 + Sim.Prng.int rng 254)));
      incr flipped
    end
  done

let rs_corrects =
  QCheck.Test.make ~name:"corrects up to nparity/2 errors" ~count:200
    QCheck.(pair (string_of_size Gen.(1 -- 200)) (int_range 0 12))
    (fun (data, nerr) ->
      let data = if String.length data > Codec.Rs.max_data rs then String.sub data 0 200 else data in
      let cw = Bytes.of_string (data ^ Codec.Rs.parity rs data) in
      let rng = Sim.Prng.create (Hashtbl.hash (data, nerr)) in
      corrupt rng cw nerr;
      match Codec.Rs.decode rs cw with
      | Codec.Rs.Ok_clean -> nerr = 0
      | Codec.Rs.Corrected n ->
          n = nerr && String.equal (Bytes.sub_string cw 0 (String.length data)) data
      | Codec.Rs.Uncorrectable -> false)

let rs_overload =
  QCheck.Test.make ~name:"more than nparity/2 errors never mis-corrects" ~count:100
    QCheck.(pair (string_of_size Gen.(50 -- 200)) (int_range 13 20))
    (fun (data, nerr) ->
      let cw = Bytes.of_string (data ^ Codec.Rs.parity rs data) in
      let rng = Sim.Prng.create (Hashtbl.hash (data, nerr, "x")) in
      corrupt rng cw nerr;
      match Codec.Rs.decode rs cw with
      | Codec.Rs.Uncorrectable -> true
      | Codec.Rs.Ok_clean -> false
      | Codec.Rs.Corrected _ ->
          (* Miscorrection is possible in theory for RS beyond t, but it
             must never silently return different data claiming clean:
             accept only if it restored the exact original. *)
          String.equal (Bytes.sub_string cw 0 (String.length data)) data)

let rs_blocks_roundtrip =
  QCheck.Test.make ~name:"encode_blocks/decode_blocks roundtrip" ~count:100
    QCheck.(string_of_size Gen.(0 -- 1000))
    (fun data ->
      match
        Codec.Rs.decode_blocks rs
          (Bytes.of_string (Codec.Rs.encode_blocks rs data))
          ~data_len:(String.length data)
      with
      | Ok out -> String.equal out data
      | Error _ -> false)

let rs_erasures_correct =
  QCheck.Test.make ~name:"corrects up to nparity known erasures" ~count:100
    QCheck.(pair (string_of_size Gen.(50 -- 200)) (int_range 0 24))
    (fun (data, nerase) ->
      let cw = Bytes.of_string (data ^ Codec.Rs.parity rs data) in
      let rng = Sim.Prng.create (Hashtbl.hash (data, nerase, "era")) in
      let chosen = Hashtbl.create 8 in
      while Hashtbl.length chosen < nerase do
        Hashtbl.replace chosen (Sim.Prng.int rng (Bytes.length cw)) ()
      done;
      let erasures = Hashtbl.fold (fun k () acc -> k :: acc) chosen [] in
      List.iter
        (fun i ->
          Bytes.set cw i
            (Char.chr (Char.code (Bytes.get cw i) lxor (1 + Sim.Prng.int rng 254))))
        erasures;
      match Codec.Rs.decode_with_erasures rs cw ~erasures with
      | Codec.Rs.Ok_clean -> nerase = 0
      | Codec.Rs.Corrected _ ->
          String.equal (Bytes.sub_string cw 0 (String.length data)) data
      | Codec.Rs.Uncorrectable -> false)

let rs_erasures_plus_errors =
  QCheck.Test.make ~name:"e erasures + t errors while e + 2t <= nparity"
    ~count:100
    QCheck.(triple (string_of_size Gen.(50 -- 180)) (int_range 0 12) (int_range 0 6))
    (fun (data, nerase, nerr) ->
      QCheck.assume (nerase + (2 * nerr) <= 24);
      let cw = Bytes.of_string (data ^ Codec.Rs.parity rs data) in
      let rng = Sim.Prng.create (Hashtbl.hash (data, nerase, nerr)) in
      let chosen = Hashtbl.create 8 in
      while Hashtbl.length chosen < nerase + nerr do
        Hashtbl.replace chosen (Sim.Prng.int rng (Bytes.length cw)) ()
      done;
      let all = Hashtbl.fold (fun k () acc -> k :: acc) chosen [] in
      List.iter
        (fun i ->
          Bytes.set cw i
            (Char.chr (Char.code (Bytes.get cw i) lxor (1 + Sim.Prng.int rng 254))))
        all;
      let erasures = List.filteri (fun i _ -> i < nerase) all in
      match Codec.Rs.decode_with_erasures rs cw ~erasures with
      | Codec.Rs.Ok_clean -> nerase + nerr = 0
      | Codec.Rs.Corrected _ ->
          String.equal (Bytes.sub_string cw 0 (String.length data)) data
      | Codec.Rs.Uncorrectable -> false)

let rs_erasure_cases =
  [
    Alcotest.test_case "erasure positions beyond plain-decode limit" `Quick
      (fun () ->
        (* 20 corrupted known positions: plain decode fails (t=10 > 12 is
           fine actually, use 26 > 24/2*2...); use 20: plain decode can
           only fix 12, erasure decode fixes all 20. *)
        let data = String.init 100 (fun i -> Char.chr (i + 32)) in
        let cw = Bytes.of_string (data ^ Codec.Rs.parity rs data) in
        let erasures = List.init 20 (fun i -> 3 * i) in
        List.iter (fun i -> Bytes.set cw i '\xEE') erasures;
        (match Codec.Rs.decode rs (Bytes.copy cw) with
        | Codec.Rs.Uncorrectable -> ()
        | _ -> Alcotest.fail "plain decode should fail at 20 errors");
        match Codec.Rs.decode_with_erasures rs cw ~erasures with
        | Codec.Rs.Corrected _ ->
            Alcotest.(check string) "restored" data
              (Bytes.sub_string cw 0 (String.length data))
        | _ -> Alcotest.fail "erasure decode failed");
    Alcotest.test_case "too many erasures refused" `Quick (fun () ->
        let data = "x" in
        let cw = Bytes.of_string (data ^ Codec.Rs.parity rs data) in
        Bytes.set cw 0 'y';
        match
          Codec.Rs.decode_with_erasures rs cw
            ~erasures:(List.init 25 (fun i -> i mod Bytes.length cw))
        with
        | Codec.Rs.Uncorrectable -> ()
        | _ -> Alcotest.fail "accepted 25 erasures");
    Alcotest.test_case "out-of-range erasure raises" `Quick (fun () ->
        let data = "x" in
        let cw = Bytes.of_string (data ^ Codec.Rs.parity rs data) in
        Alcotest.check_raises "range"
          (Invalid_argument "Rs.decode_with_erasures: erasure position out of range")
          (fun () ->
            ignore (Codec.Rs.decode_with_erasures rs cw ~erasures:[ 999 ])));
  ]

let rs_cases =
  [
    Alcotest.test_case "parity length" `Quick (fun () ->
        Alcotest.(check int) "24" 24 (String.length (Codec.Rs.parity rs "hello")));
    Alcotest.test_case "nparity bounds" `Quick (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Rs.make: nparity must be in 1..254") (fun () ->
            ignore (Codec.Rs.make ~nparity:0)));
    Alcotest.test_case "clean codeword decodes clean" `Quick (fun () ->
        let data = "the SERO device" in
        let cw = Bytes.of_string (data ^ Codec.Rs.parity rs data) in
        match Codec.Rs.decode rs cw with
        | Codec.Rs.Ok_clean -> ()
        | _ -> Alcotest.fail "expected clean");
  ]

(* {1 Sector framing} *)

let sector_roundtrip =
  QCheck.Test.make ~name:"sector encode/decode roundtrip" ~count:100
    QCheck.(pair (string_of_size Gen.(0 -- 512)) (int_range 0 100000))
    (fun (payload, pba) ->
      let image =
        Codec.Sector.encode ~pba ~kind:Codec.Sector.Data ~generation:3 payload
      in
      match Codec.Sector.decode image with
      | Ok d ->
          d.Codec.Sector.pba = pba
          && d.Codec.Sector.generation = 3
          && String.length d.Codec.Sector.payload = 512
          && String.equal (String.sub d.Codec.Sector.payload 0 (String.length payload)) payload
      | Error _ -> false)

let sector_error_correction =
  QCheck.Test.make ~name:"sector survives 12 byte errors per codeword" ~count:50
    QCheck.(string_of_size Gen.(0 -- 512))
    (fun payload ->
      let image =
        Codec.Sector.encode ~pba:7 ~kind:Codec.Sector.Inode ~generation:1 payload
      in
      let b = Bytes.of_string image in
      (* Corrupt 10 bytes of the first 255-byte codeword. *)
      let rng = Sim.Prng.create (Hashtbl.hash payload) in
      for _ = 1 to 10 do
        let i = Sim.Prng.int rng 255 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xA5))
      done;
      match Codec.Sector.decode (Bytes.to_string b) with
      | Ok d -> d.Codec.Sector.pba = 7 && d.Codec.Sector.corrected_symbols > 0
      | Error _ -> false)

let sector_cases =
  [
    Alcotest.test_case "overhead about 15%" `Quick (fun () ->
        Alcotest.(check bool) "in range" true
          (Codec.Sector.overhead_fraction > 0.13
          && Codec.Sector.overhead_fraction < 0.17));
    Alcotest.test_case "physical size stable" `Quick (fun () ->
        Alcotest.(check int) "604 bytes" 604 Codec.Sector.physical_bytes);
    Alcotest.test_case "payload too long rejected" `Quick (fun () ->
        Alcotest.check_raises "513"
          (Invalid_argument "Sector.encode: payload longer than 512 bytes")
          (fun () ->
            ignore
              (Codec.Sector.encode ~pba:0 ~kind:Codec.Sector.Data ~generation:0
                 (String.make 513 'x'))));
    Alcotest.test_case "garbage image fails structured" `Quick (fun () ->
        match Codec.Sector.decode (String.make Codec.Sector.physical_bytes 'Z') with
        | Error _ -> ()
        | Ok _ -> Alcotest.fail "garbage decoded");
    Alcotest.test_case "kind roundtrips" `Quick (fun () ->
        List.iter
          (fun k ->
            Alcotest.(check bool)
              "kind" true
              (Codec.Sector.kind_of_int (Codec.Sector.kind_to_int k) = Some k))
          [ Codec.Sector.Data; Inode; Summary; Checkpoint; Hash_meta ]);
  ]

(* {1 WOM code} *)

let wom_two_generations =
  QCheck.Test.make ~name:"any two successive values are storable" ~count:200
    QCheck.(pair (int_range 0 3) (int_range 0 3))
    (fun (v1, v2) ->
      let c1 = Codec.Wom.encode_first v1 in
      match Codec.Wom.decode c1 with
      | Some (v, 1) when v = v1 -> (
          match Codec.Wom.write c1 v2 with
          | Codec.Wom.Written c2 -> (
              match Codec.Wom.decode c2 with
              | Some (v, g) -> v = v2 && (g = 2 || v1 = v2)
              | None -> false)
          | Codec.Wom.Exhausted -> false)
      | _ -> false)

let wom_monotone =
  QCheck.Test.make ~name:"writes never clear cells" ~count:200
    QCheck.(pair (int_range 0 3) (int_range 0 3))
    (fun (v1, v2) ->
      let c1 = Codec.Wom.encode_first v1 in
      match Codec.Wom.write c1 v2 with
      | Codec.Wom.Written c2 ->
          c2.(0) >= c1.(0) && c2.(1) >= c1.(1) && c2.(2) >= c1.(2)
      | Codec.Wom.Exhausted -> true)

let wom_cases =
  [
    Alcotest.test_case "third distinct write exhausted" `Quick (fun () ->
        let c1 = Codec.Wom.encode_first 0 in
        match Codec.Wom.write c1 1 with
        | Codec.Wom.Written c2 -> (
            match Codec.Wom.write c2 2 with
            | Codec.Wom.Exhausted -> ()
            | Codec.Wom.Written _ -> Alcotest.fail "third write accepted")
        | Codec.Wom.Exhausted -> Alcotest.fail "second write refused");
    Alcotest.test_case "rate comparison" `Quick (fun () ->
        Alcotest.(check bool) "wom beats manchester" true
          (Codec.Wom.rate > 2. *. Codec.Wom.manchester_rate));
  ]

(* {1 Binio} *)

let binio_roundtrip =
  QCheck.Test.make ~name:"writer/reader roundtrip" ~count:300
    QCheck.(
      quad (int_range 0 255) (int_range 0 65535) (int_range 0 0xFFFFFFFF)
        (string_of_size Gen.(0 -- 80)))
    (fun (a, b, c, s) ->
      let w = Codec.Binio.W.create () in
      Codec.Binio.W.u8 w a;
      Codec.Binio.W.u16 w b;
      Codec.Binio.W.u32 w c;
      Codec.Binio.W.u64 w (c * 7);
      Codec.Binio.W.str w s;
      let r = Codec.Binio.R.of_string (Codec.Binio.W.contents w) in
      Codec.Binio.R.u8 r = a
      && Codec.Binio.R.u16 r = b
      && Codec.Binio.R.u32 r = c
      && Codec.Binio.R.u64 r = c * 7
      && String.equal (Codec.Binio.R.str r) s
      && Codec.Binio.R.remaining r = 0)

let binio_cases =
  [
    Alcotest.test_case "truncated read raises" `Quick (fun () ->
        let r = Codec.Binio.R.of_string "ab" in
        Alcotest.check_raises "u32" Codec.Binio.R.Truncated (fun () ->
            ignore (Codec.Binio.R.u32 r)));
    Alcotest.test_case "negative raw length raises" `Quick (fun () ->
        let r = Codec.Binio.R.of_string "abcd" in
        Alcotest.check_raises "raw" Codec.Binio.R.Truncated (fun () ->
            ignore (Codec.Binio.R.raw r (-1))));
  ]

let () =
  Alcotest.run "codec"
    [
      ( "manchester",
        manchester_cases
        @ List.map qtest
            [ manchester_roundtrip; manchester_spreading; manchester_density;
              manchester_tamper ] );
      ("crc32", crc_cases @ [ qtest crc_detects_flip ]);
      ("gf256", List.map qtest gf_tests);
      ( "reed-solomon",
        rs_cases @ rs_erasure_cases
        @ List.map qtest
            [ rs_corrects; rs_overload; rs_blocks_roundtrip;
              rs_erasures_correct; rs_erasures_plus_errors ] );
      ( "sector",
        sector_cases @ List.map qtest [ sector_roundtrip; sector_error_correction ] );
      ("wom", wom_cases @ List.map qtest [ wom_two_generations; wom_monotone ]);
      ("binio", binio_cases @ [ qtest binio_roundtrip ]);
    ]
