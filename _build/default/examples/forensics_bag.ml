(* Live forensics (Section 8): instead of imaging a whole server disk,
   an investigator heats the files that constitute evidence — a digital
   evidence bag in place.  Later, even after an insider has scrubbed
   the namespace and degaussed the medium, the raw scan recovers the
   heated evidence or shows that it was attacked.

   Run with: dune exec examples/forensics_bag.exe *)

let ok = function Ok v -> v | Error e -> failwith e

let () =
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:2048 ~line_exp:3 ())
  in
  let fs = Lfs.Fs.format dev in
  ok (Lfs.Fs.mkdir fs "/home");
  ok (Lfs.Fs.mkdir fs "/home/suspect");
  let evidence =
    [
      ("/home/suspect/mail-archive", "From: suspect\nTo: accomplice\nwipe the Q3 numbers\n");
      ("/home/suspect/shell-history", "scp books.xls darksite:\nshred -u books.xls\n");
    ]
  in
  let noise = "/home/suspect/holiday-photos" in
  List.iter
    (fun (path, body) ->
      ok (Lfs.Fs.create fs ~heat_group:9 path);
      ok (Lfs.Fs.write_file fs path ~offset:0 body))
    evidence;
  ok (Lfs.Fs.create fs noise);
  ok (Lfs.Fs.write_file fs noise ~offset:0 (String.make 4096 'p'));

  (* The investigator bags the evidence: no copying, just heating. *)
  print_endline "bagging evidence (heating files in place):";
  let digests =
    List.map
      (fun (path, body) ->
        let r = ok (Lfs.Fs.heat fs path) in
        Printf.printf "  %-28s -> %d heated line(s)\n" path
          (List.length r.Lfs.Heat.lines);
        (path, Hash.Sha256.digest_string body))
      evidence
  in
  Lfs.Fs.sync fs;

  (* The suspect (with root) counter-attacks: scrub the directories,
     then degauss the drive. *)
  print_endline "suspect scrubs the namespace and bulk-erases the medium...";
  let st = Lfs.Fs.state fs in
  List.iter
    (fun path ->
      match Lfs.Dirops.lookup st path with
      | Some (ino, Lfs.Enc.Directory) ->
          Array.iter
            (fun pba ->
              if pba <> 0 then
                Sero.Device.unsafe_write_block dev ~pba (String.make 512 '\x00'))
            (Lfs.File.pointers st ino)
      | Some _ | None -> ())
    [ "/"; "/home"; "/home/suspect" ];

  (* First recovery attempt: namespace is gone, scan finds the bag. *)
  let report = Lfs.Fsck.run dev in
  Printf.printf "scan after scrub: %d heated lines intact, %d files recovered\n"
    report.Lfs.Fsck.heated_intact
    (List.length report.Lfs.Fsck.recovered_files);
  List.iter
    (fun f ->
      let authentic =
        List.exists
          (fun (_, d) ->
            match f.Lfs.Fsck.r_content_sha256 with
            | Some d' -> Hash.Sha256.equal d d'
            | None -> false)
          digests
      in
      Printf.printf "  recovered ino %d (%d bytes): authentic evidence: %b\n"
        f.Lfs.Fsck.r_ino f.Lfs.Fsck.r_size authentic)
    report.Lfs.Fsck.recovered_files;

  (* Desperate measure: the bulk eraser.  The magnetic data dies, but
     every burned line testifies that evidence existed and was hit. *)
  Sero.Device.unsafe_magnetic_wipe dev;
  Sero.Device.refresh_heated_cache dev;
  let report = Lfs.Fsck.run dev in
  Printf.printf
    "scan after bulk erase: %d heated lines, all tampered: %b\n"
    (report.Lfs.Fsck.heated_intact + List.length report.Lfs.Fsck.heated_tampered)
    (report.Lfs.Fsck.heated_intact = 0
    && report.Lfs.Fsck.heated_tampered <> [])
