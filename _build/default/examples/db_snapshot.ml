(* The paper's motivating application (Section 1): a live database that
   must stay fast for random reads and writes, with periodic snapshots
   frozen for auditing.

   Tables keep being updated at full WMRM speed while each snapshot is
   materialised concurrently and heated; the example then shows the
   clustering policy's effect and that a tampered snapshot is caught.

   Run with: dune exec examples/db_snapshot.exe *)

let ok = function Ok v -> v | Error e -> failwith e

let run ~clustering =
  let device = Sero.Device.default_config ~n_blocks:8192 ~line_exp:3 () in
  let cfg =
    {
      Workload.Dbwork.default_config with
      Workload.Dbwork.snapshots = 6;
      updates_between_snapshots = 300;
    }
  in
  let r = Workload.Dbwork.run ~clustering ~device cfg in
  let s = r.Workload.Dbwork.fs_stats in
  Printf.printf
    "  clustering=%-5b  snapshots verified: %d lines intact, %d bad\n"
    clustering r.Workload.Dbwork.snap_verdicts_ok
    r.Workload.Dbwork.snap_verdicts_bad;
  Printf.printf
    "                   heat-time copies: %d blocks, device writes: %d, simulated time: %.0f s\n"
    s.Lfs.Fs.metrics.Lfs.State.heat_relocations
    s.Lfs.Fs.metrics.Lfs.State.fs_block_writes r.Workload.Dbwork.wall

let () =
  print_endline "database + audit snapshots on one SERO device";
  print_endline "(the clustering allocator keeps snapshot blocks together so";
  print_endline " they can be heated in place; the ablation must copy first)";
  run ~clustering:true;
  run ~clustering:false;

  (* Now the tampering part, on a small hand-driven instance. *)
  print_endline "\ntamper check on a frozen snapshot:";
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:1024 ~line_exp:3 ())
  in
  let fs = Lfs.Fs.format dev in
  ok (Lfs.Fs.create fs ~heat_group:0 "/accounts");
  ok
    (Lfs.Fs.write_file fs "/accounts" ~offset:0
       (String.concat "\n"
          (List.init 32 (fun i -> Printf.sprintf "account %02d balance %d" i (100 * i)))));
  (* Snapshot = frozen copy; the live table stays writable. *)
  ok (Lfs.Fs.mkdir fs "/snapshots");
  ok (Lfs.Fs.create fs ~heat_group:1 "/snapshots/2007-q4");
  let table = ok (Lfs.Fs.read_file fs "/accounts") in
  ok (Lfs.Fs.write_file fs "/snapshots/2007-q4" ~offset:0 table);
  let _ = ok (Lfs.Fs.heat fs "/snapshots/2007-q4") in
  ok (Lfs.Fs.write_file fs "/accounts" ~offset:0 "account 00 balance 999");
  Printf.printf "  live table still writable after snapshot freeze: yes\n";
  (* A dishonest CFO rewrites the frozen snapshot at the device level. *)
  let st = Lfs.Fs.state fs in
  let ino =
    match Lfs.Dirops.lookup st "/snapshots/2007-q4" with
    | Some (i, _) -> i
    | None -> failwith "snapshot vanished"
  in
  let line = List.hd (Lfs.Heat.file_lines st ~ino) in
  Sero.Device.unsafe_write_block dev
    ~pba:(List.nth (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) line) 1)
    "account 01 balance 0";
  let bad =
    List.filter
      (fun (_, v) -> Sero.Tamper.is_tampered v)
      (ok (Lfs.Fs.verify fs "/snapshots/2007-q4"))
  in
  Printf.printf "  audit of the frozen snapshot: %d line(s) report tampering\n"
    (List.length bad)
