(* Regulatory compliance (SOX / EU data retention, Sections 1, 2, 8):
   records arrive tagged with retention classes, get archived into
   tamper-evident storage, are indexed in a fossilised index so the
   index itself cannot be silently rewritten, and end up in a Venti
   snapshot whose single heated root authenticates everything.

   Run with: dune exec examples/compliance_archive.exe *)

let ok = function Ok v -> v | Error e -> failwith e

let () =
  (* 1. Retention-class archive files on the LFS. *)
  print_endline "1. retention classes (append, audit-freeze per class)";
  let r =
    Workload.Retention.run
      ~device:(Sero.Device.default_config ~n_blocks:4096 ~line_exp:3 ())
      Workload.Retention.default_config
  in
  List.iter
    (fun c ->
      Printf.printf
        "   class %d: %3d records, %2d heated lines, audits verified: %b\n"
        c.Workload.Retention.class_id c.Workload.Retention.records_stored
        c.Workload.Retention.heated_lines c.Workload.Retention.verdict_ok)
    r.Workload.Retention.per_class;

  (* 2. A fossilised index over the record identifiers. *)
  print_endline "2. fossilised index of record ids (sealed nodes are heated)";
  let fdev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:2048 ~line_exp:3 ())
  in
  let fossil = Fossil.create fdev in
  for i = 0 to 299 do
    ok
      (Fossil.insert fossil
         ~key:(Printf.sprintf "case-%04d" i)
         ~value:(Printf.sprintf "class %d, archived" (i mod 3)))
  done;
  let fstats = Fossil.stats fossil in
  Printf.printf "   %d entries in %d nodes (%d sealed, depth %d)\n"
    fstats.Fossil.entries fstats.Fossil.nodes fstats.Fossil.sealed_nodes
    fstats.Fossil.depth;
  Printf.printf "   lookup case-0123 -> %s\n"
    (match Fossil.find fossil ~key:"case-0123" with
    | Ok [ v ] -> v
    | Ok vs -> Printf.sprintf "%d values" (List.length vs)
    | Error e -> e);
  let bad_nodes =
    List.filter
      (fun (_, v) -> Sero.Tamper.is_tampered v)
      (Fossil.verify fossil)
  in
  Printf.printf "   sealed-node verification: %d tampered\n"
    (List.length bad_nodes);

  (* 3. A Venti snapshot of the quarter's documents; only the root's
     line needs to be consulted to trust the whole archive. *)
  print_endline "3. venti snapshot (content-addressed, heated root)";
  let vdev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:2048 ~line_exp:3 ())
  in
  let venti = Venti.create vdev in
  let documents =
    List.init 5 (fun i ->
        ( Printf.sprintf "filing-%d.txt" i,
          String.concat "\n"
            (List.init 50 (fun j ->
                 Printf.sprintf "filing %d, clause %02d: retained per SOX 802" i j))
        ))
  in
  let snap = ok (Venti.snapshot venti ~label:"2007-Q4" documents) in
  Format.printf "   snapshot root score: %a@." Hash.Sha256.pp snap.Venti.root;
  (match Venti.verify_snapshot venti snap with
  | Ok () -> print_endline "   full-tree verification: intact"
  | Error e -> Printf.printf "   verification FAILED: %s\n" e);
  let restored = ok (Venti.restore venti snap) in
  Printf.printf "   restored %d documents bit-exact: %b\n"
    (List.length restored)
    (List.for_all2
       (fun (n1, d1) (n2, d2) -> n1 = n2 && String.equal d1 d2)
       documents restored);

  (* 4. Tamper with one archived block; the snapshot catches it. *)
  let lay = Sero.Device.layout vdev in
  Sero.Device.unsafe_write_block vdev
    ~pba:(List.hd (Sero.Layout.data_blocks_of_line lay 0))
    "redacted";
  (match Venti.verify_snapshot venti snap with
  | Ok () -> print_endline "4. tampering NOT caught (bug!)"
  | Error e -> Printf.printf "4. tampering caught: %s\n" e)
