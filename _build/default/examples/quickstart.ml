(* Quickstart: the whole SERO story in one page.

   Create a simulated device, put a file system on it, write a record,
   heat it (making it tamper-evident), watch the file system refuse
   modifications, tamper at the raw-device level anyway, and catch the
   tampering with verify.

   Run with: dune exec examples/quickstart.exe *)

let ok = function Ok v -> v | Error e -> failwith e

let () =
  (* A small device: 512 sectors of 512 bytes, heat lines of 8 blocks. *)
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:512 ~line_exp:3 ())
  in
  let fs = Lfs.Fs.format dev in

  (* Ordinary WMRM use: write, overwrite, read. *)
  ok (Lfs.Fs.create fs "/audit-log");
  ok (Lfs.Fs.write_file fs "/audit-log" ~offset:0 "2007-12-01 paid supplier A 1000\n");
  ok (Lfs.Fs.append fs "/audit-log" "2007-12-02 paid supplier B 2500\n");
  Printf.printf "log contents:\n%s" (ok (Lfs.Fs.read_file fs "/audit-log"));

  (* Year end: freeze the log.  The file system clusters the file into
     whole heat lines and burns a SHA-256 hash per line. *)
  let r = ok (Lfs.Fs.heat fs "/audit-log") in
  Printf.printf "heated %d line(s)\n" (List.length r.Lfs.Heat.lines);

  (* The honest API now refuses every modification... *)
  (match Lfs.Fs.write_file fs "/audit-log" ~offset:11 "99" with
  | Error e -> Printf.printf "write refused: %s\n" e
  | Ok () -> assert false);
  (match Lfs.Fs.unlink fs "/audit-log" with
  | Error e -> Printf.printf "rm refused:    %s\n" e
  | Ok () -> assert false);

  (* ...but a root-level attacker drives the device directly. *)
  let line = List.hd r.Lfs.Heat.lines in
  let victim =
    List.hd (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) line)
  in
  Sero.Device.unsafe_write_block dev ~pba:victim
    "2007-12-01 paid supplier A   10\n";

  (* The burned hash cannot lie. *)
  List.iter
    (fun (l, v) ->
      Format.printf "verify line %d: %a@." l Sero.Tamper.pp_verdict v)
    (ok (Lfs.Fs.verify fs "/audit-log"));

  (* Even a bulk eraser cannot remove the evidence: heated dots have no
     magnetisation left to erase. *)
  Sero.Device.unsafe_magnetic_wipe dev;
  Sero.Device.refresh_heated_cache dev;
  let report = Lfs.Fsck.run dev in
  Format.printf
    "after bulk erase, the medium scan still shows %d tampered heated line(s)@."
    (List.length report.Lfs.Fsck.heated_tampered)
