(* Ballot storage in the style of Molnar et al. — the work the paper's
   Manchester-cell idea comes from (Section 1): each vote is committed
   to write-once cells the moment it is cast, so recorded votes cannot
   be altered, only vandalised detectably.

   Here the PROM is replaced by the patterned medium: one ewb pulse per
   heated dot, reading through the erb protocol.  The example casts
   votes, closes the poll, tallies, and then shows that flipping even
   one stored vote is physically impossible without leaving HH cells.

   Run with: dune exec examples/voting_machine.exe *)

let candidates = [| "Abelmann"; "Hartel"; "Khatib" |]

(* One ballot = one byte (candidate index), Manchester-encoded into 16
   dots of a ballot slot. *)
let dots_per_ballot = 16

let () =
  let medium =
    Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:64 ~cols:64)
  in
  let pdev =
    Probe.Pdevice.create
      ~config:{ Probe.Pdevice.default_config with Probe.Pdevice.n_tips = 16 }
      medium
  in
  let cast slot candidate =
    let pattern = Codec.Manchester.encode (String.make 1 (Char.chr candidate)) in
    Probe.Pdevice.heat_run pdev ~start:(slot * dots_per_ballot) pattern
  in
  let read_ballot slot =
    let heated =
      Probe.Pdevice.erb_run pdev ~start:(slot * dots_per_ballot)
        ~len:dots_per_ballot
    in
    Codec.Manchester.decode ~heated:(fun i -> heated.(i)) ~n_bytes:1
  in
  (* Election day. *)
  let votes = [ 0; 1; 1; 2; 1; 0; 2; 1; 0; 1 ] in
  List.iteri cast votes;
  Printf.printf "%d ballots cast\n" (List.length votes);

  (* Close of poll: tally by reading the write-once cells. *)
  let tally = Array.make (Array.length candidates) 0 in
  let spoiled = ref 0 in
  List.iteri
    (fun slot _ ->
      let d = read_ballot slot in
      if Codec.Manchester.is_clean d then begin
        let c = Char.code d.Codec.Manchester.payload.[0] in
        tally.(c) <- tally.(c) + 1
      end
      else incr spoiled)
    votes;
  Array.iteri
    (fun i c -> Printf.printf "  %-10s %d\n" candidates.(i) c)
    tally;
  Printf.printf "  spoiled: %d\n" !spoiled;

  (* A corrupt official tries to flip ballot 3 (for candidate 2) to
     candidate 1.  Cells can only gain heat: the attempt necessarily
     creates an HH cell. *)
  print_endline "official attempts to rewrite ballot 3...";
  let pattern = Codec.Manchester.encode (String.make 1 (Char.chr 1)) in
  Probe.Pdevice.heat_run pdev ~start:(3 * dots_per_ballot) pattern;
  let d = read_ballot 3 in
  if Codec.Manchester.is_clean d then print_endline "  rewrite went unnoticed (bug!)"
  else
    Printf.printf "  ballot 3 now shows %d invalid HH cell(s): fraud evident\n"
      (List.length d.Codec.Manchester.tampered_cells);

  (* History independence: the medium stores the same pattern no matter
     the order ballots were cast in; verify by comparing two runs. *)
  let fingerprint m =
    let buf = Buffer.create 256 in
    for slot = 0 to 15 do
      for dot = slot * dots_per_ballot to (slot * dots_per_ballot) + 15 do
        Buffer.add_char buf
          (if Pmedia.Dot.is_heated (Pmedia.Medium.get m dot) then 'H' else 'U')
      done
    done;
    Hash.Sha256.to_hex (Hash.Sha256.digest_string (Buffer.contents buf))
  in
  let run_order votes =
    let m = Pmedia.Medium.create (Pmedia.Medium.default_config ~rows:64 ~cols:64) in
    let p =
      Probe.Pdevice.create
        ~config:{ Probe.Pdevice.default_config with Probe.Pdevice.n_tips = 16 }
        m
    in
    List.iter
      (fun (slot, candidate) ->
        let pat = Codec.Manchester.encode (String.make 1 (Char.chr candidate)) in
        Probe.Pdevice.heat_run p ~start:(slot * dots_per_ballot) pat)
      votes;
    fingerprint m
  in
  let ballots = [ (0, 2); (1, 0); (2, 1) ] in
  let a = run_order ballots and b = run_order (List.rev ballots) in
  Printf.printf "medium state independent of casting order: %b\n"
    (String.equal a b)
