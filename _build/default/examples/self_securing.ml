(* Self-securing storage (Section 8): the device journals every command
   it is given and periodically heats the journal, so even a fully
   compromised host cannot silently launder history.

   Run with: dune exec examples/self_securing.exe *)

let ok = function Ok v -> v | Error e -> failwith e

let () =
  let dev =
    Sero.Device.create (Sero.Device.default_config ~n_blocks:4096 ~line_exp:3 ())
  in
  let fs = Lfs.Fs.format dev in
  let s = ok (Selfsec.wrap ~epoch_len:6 fs) in

  (* Normal operation: the host works through the wrapper, every
     command lands in the journal. *)
  ok (Selfsec.create s "/books.xls");
  ok (Selfsec.write_file s "/books.xls" ~offset:0 "Q1 revenue 100\nQ2 revenue 120\n");
  ok (Selfsec.write_file s "/books.xls" ~offset:0 "Q1 revenue 900\nQ2 revenue 920\n");
  ok (Selfsec.write_file s "/books.xls" ~offset:0 "Q1 revenue 100\nQ2 revenue 120\n");
  ok (Selfsec.unlink s "/books.xls");
  ok (Selfsec.create s "/books.xls");
  ok (Selfsec.write_file s "/books.xls" ~offset:0 "Q1 revenue 100\n");

  print_endline "journalled history:";
  List.iter
    (fun e ->
      Format.printf "  #%d %-7s %-12s before=%a after=%a@." e.Selfsec.seq
        e.Selfsec.op e.Selfsec.path Hash.Sha256.pp e.Selfsec.before_digest
        Hash.Sha256.pp e.Selfsec.after_digest)
    (ok (Selfsec.history s));

  let a = ok (Selfsec.verify_history s) in
  Printf.printf
    "audit: %d entries, %d sealed epochs, chain intact: %b, tampered: %d\n"
    a.Selfsec.entries a.Selfsec.sealed_epochs a.Selfsec.chain_intact
    (List.length a.Selfsec.tampered_epochs);

  (* The intruder (root on the host) rewrites a sealed journal epoch on
     the raw device to hide the suspicious 900/920 interlude. *)
  print_endline "intruder rewrites a sealed journal epoch on the raw device...";
  let st = Lfs.Fs.state fs in
  (match Lfs.Dirops.lookup st "/.selfsec/epoch-000000" with
  | Some (ino, _) ->
      let line = List.hd (Lfs.Heat.file_lines st ~ino) in
      Sero.Device.unsafe_write_block dev
        ~pba:
          (List.hd
             (Sero.Layout.data_blocks_of_line (Sero.Device.layout dev) line))
        "nothing to see here"
  | None -> failwith "no sealed epoch");

  let a = ok (Selfsec.verify_history s) in
  Printf.printf
    "audit after attack: tampered epochs: %d  -> the laundering is evident\n"
    (List.length a.Selfsec.tampered_epochs)
